#include "core/task_graph_shape.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/check.h"

namespace frap::core {

namespace {

// splitmix64-style mixing; the same finalizer util::IdMap uses. Color and
// encoding hashes only steer bucket placement and canonical ORDER — shape
// equality always compares the full encoding, so collisions cannot alias.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix(h ^ mix(v));
}

std::uint64_t duration_bits(Duration d) {
  return std::bit_cast<std::uint64_t>(static_cast<double>(d));
}

// Dense multiplicity vector over touched-resource positions.
using Mvec = std::vector<std::uint32_t>;

std::uint64_t vec_sum(const Mvec& v) {
  std::uint64_t s = 0;
  for (std::uint32_t m : v) s += m;
  return s;
}

// a dominates b: a[i] >= b[i] everywhere (equal vectors dominate too; the
// caller dedupes first).
bool dominates(const Mvec& a, const Mvec& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

void fold_max(Mvec& into, const Mvec& from) {
  if (into.empty()) {
    into = from;
    return;
  }
  for (std::size_t i = 0; i < into.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

// Pareto-prunes `set` in place (dedupe + dominance filter), then caps it at
// `cap` keeping the largest profiles by (sum, lexicographic) — the dominant
// long paths. Dropped vectors fold into `envelope`; returns true when
// anything was dropped by the CAP (dominance drops are lossless).
bool prune_profiles(std::vector<Mvec>& set, std::size_t cap, Mvec& envelope) {
  // Largest-sum first; lexicographically larger first on ties, so the order
  // (and therefore the kept set) is independent of insertion order.
  std::sort(set.begin(), set.end(), [](const Mvec& a, const Mvec& b) {
    const std::uint64_t sa = vec_sum(a);
    const std::uint64_t sb = vec_sum(b);
    if (sa != sb) return sa > sb;
    return a > b;
  });
  set.erase(std::unique(set.begin(), set.end()), set.end());
  std::vector<Mvec> kept;
  kept.reserve(std::min(set.size(), cap + 1));
  for (Mvec& v : set) {
    bool dominated = false;
    // Only an earlier (>= sum) vector can dominate v.
    for (const Mvec& k : kept) {
      if (dominates(k, v)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(std::move(v));
  }
  bool capped = false;
  if (kept.size() > cap) {
    for (std::size_t i = cap; i < kept.size(); ++i) {
      fold_max(envelope, kept[i]);
    }
    kept.resize(cap);
    capped = true;
  }
  set = std::move(kept);
  return capped;
}

}  // namespace

bool TaskGraphShape::layout_matches(const GraphTaskSpec& spec) const {
  if (spec.nodes.size() != node_resource_.size()) return false;
  if (spec.edges.size() != edge_to_.size()) return false;
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    if (spec.nodes[i].resource != node_resource_[i]) return false;
    if (spec.nodes[i].demand.compute != node_compute_[i]) return false;
  }
  // Canonicalized specs carry their edges in the shape's (sorted) canonical
  // order, so an exact positional compare suffices — and keeps this check,
  // which runs inside every hot-path FRAP_ASSERT, allocation-free.
  for (std::size_t i = 0; i < spec.edges.size(); ++i) {
    if (spec.edges[i].from != edge_from_[i] ||
        spec.edges[i].to != edge_to_[i]) {
      return false;
    }
  }
  return true;
}

double TaskGraphShape::longest_path_weight(
    std::span<const double> weight_by_resource,
    std::vector<double>& scratch_dist) const {
  const std::size_t n = num_nodes();
  scratch_dist.assign(n, 0.0);
  double best = 0;
  // Canonical order is topological: predecessors of v precede v, so
  // scratch_dist[v] already holds the max predecessor path weight.
  for (std::size_t v = 0; v < n; ++v) {
    FRAP_EXPECTS(node_resource_[v] < weight_by_resource.size());
    const double val = scratch_dist[v] + weight_by_resource[node_resource_[v]];
    best = std::max(best, val);
    for (std::uint32_t s : successors(v)) {
      scratch_dist[s] = std::max(scratch_dist[s], val);
    }
  }
  return best;
}

TaskGraphShapeRegistry::CanonicalForm TaskGraphShapeRegistry::canonical_form(
    const GraphTaskSpec& spec) {
  // n == 0 is allowed: the empty graph canonicalizes to a benign shape with
  // no touched resources and no profiles (its path maximum is 0). valid()
  // still rejects empty specs before they reach a runtime.
  const std::size_t n = spec.nodes.size();
  std::vector<std::vector<std::uint32_t>> succ(n);
  std::vector<std::vector<std::uint32_t>> pred(n);
  std::vector<std::uint32_t> indeg(n, 0);
  for (const auto& e : spec.edges) {
    succ[e.from].push_back(static_cast<std::uint32_t>(e.to));
    pred[e.to].push_back(static_cast<std::uint32_t>(e.from));
    ++indeg[e.to];
  }

  // Longest hop distance from any source: a permutation-invariant graph
  // property that respects topology (edge u->v implies depth u < depth v),
  // so any depth-sorted order is topological regardless of tie-breaks.
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<std::uint32_t> remaining = indeg;
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (remaining[v] == 0) queue.push_back(static_cast<std::uint32_t>(v));
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const std::uint32_t v = queue[head++];
    for (std::uint32_t s : succ[v]) {
      depth[s] = std::max(depth[s], depth[v] + 1);
      if (--remaining[s] == 0) queue.push_back(s);
    }
  }
  FRAP_EXPECTS(queue.size() == n);  // acyclic (spec.valid() guarantees it)

  // Weisfeiler-Leman color refinement seeded with the node attributes.
  std::vector<std::uint64_t> color(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t c = mix(depth[v]);
    c = combine(c, spec.nodes[v].resource);
    c = combine(c, duration_bits(spec.nodes[v].demand.compute));
    c = combine(c, pred[v].size());
    c = combine(c, succ[v].size());
    color[v] = c;
  }
  std::vector<std::uint64_t> next(n);
  std::vector<std::uint64_t> neigh;
  auto distinct = [](std::vector<std::uint64_t> c) {
    std::sort(c.begin(), c.end());
    return static_cast<std::size_t>(
        std::unique(c.begin(), c.end()) - c.begin());
  };
  std::size_t classes = distinct(color);
  for (int round = 0; round < 8 && classes < n; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t c = mix(color[v]);
      neigh.clear();
      for (std::uint32_t p : pred[v]) neigh.push_back(color[p]);
      std::sort(neigh.begin(), neigh.end());
      for (std::uint64_t h : neigh) c = combine(c, h);
      c = combine(c, 0x70726564u);  // separate pred from succ multisets
      neigh.clear();
      for (std::uint32_t s : succ[v]) neigh.push_back(color[s]);
      std::sort(neigh.begin(), neigh.end());
      for (std::uint64_t h : neigh) c = combine(c, h);
      next[v] = c;
    }
    color.swap(next);
    const std::size_t now = distinct(color);
    if (now == classes) break;  // stable partition
    classes = now;
  }

  // Canonical order: (depth, refined color), original index as the last
  // resort. Residual ties are either truly automorphic (any order yields
  // the same encoding) or a missed aliasing opportunity — never a false
  // merge, because equality compares the full encoding.
  std::vector<std::uint32_t> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<std::uint32_t>(v);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (depth[a] != depth[b]) return depth[a] < depth[b];
              if (color[a] != color[b]) return color[a] < color[b];
              return a < b;
            });

  CanonicalForm form;
  form.canon_of_original.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    form.canon_of_original[order[pos]] = static_cast<std::uint32_t>(pos);
  }

  form.encoding.reserve(2 + 2 * n + spec.edges.size());
  form.encoding.push_back(n);
  form.encoding.push_back(spec.edges.size());
  for (std::size_t pos = 0; pos < n; ++pos) {
    const auto& node = spec.nodes[order[pos]];
    form.encoding.push_back(node.resource);
    form.encoding.push_back(duration_bits(node.demand.compute));
  }
  std::vector<std::uint64_t> edges;
  edges.reserve(spec.edges.size());
  for (const auto& e : spec.edges) {
    edges.push_back(
        (static_cast<std::uint64_t>(form.canon_of_original[e.from]) << 32) |
        form.canon_of_original[e.to]);
  }
  std::sort(edges.begin(), edges.end());
  form.encoding.insert(form.encoding.end(), edges.begin(), edges.end());

  std::uint64_t h = 0x646167u;
  for (std::uint64_t w : form.encoding) h = combine(h, w);
  form.hash = h;
  return form;
}

std::unique_ptr<TaskGraphShape> TaskGraphShapeRegistry::build_shape(
    const GraphTaskSpec& spec, CanonicalForm form) {
  auto shape = std::unique_ptr<TaskGraphShape>(new TaskGraphShape());
  const std::size_t n = spec.nodes.size();
  shape->hash_ = form.hash;
  shape->encoding_ = std::move(form.encoding);

  shape->node_resource_.resize(n);
  shape->node_compute_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t c = form.canon_of_original[v];
    shape->node_resource_[c] =
        static_cast<std::uint32_t>(spec.nodes[v].resource);
    shape->node_compute_[c] = spec.nodes[v].demand.compute;
  }

  std::vector<std::uint64_t> edges;
  edges.reserve(spec.edges.size());
  for (const auto& e : spec.edges) {
    edges.push_back(
        (static_cast<std::uint64_t>(form.canon_of_original[e.from]) << 32) |
        form.canon_of_original[e.to]);
  }
  std::sort(edges.begin(), edges.end());
  shape->edge_from_.reserve(edges.size());
  shape->edge_to_.reserve(edges.size());
  shape->indegree_.assign(n, 0);
  std::vector<std::uint32_t> outdeg(n, 0);
  for (std::uint64_t e : edges) {
    const auto from = static_cast<std::uint32_t>(e >> 32);
    const auto to = static_cast<std::uint32_t>(e & 0xffffffffu);
    FRAP_ASSERT(from < to);  // canonical order is topological
    shape->edge_from_.push_back(from);
    shape->edge_to_.push_back(to);
    ++outdeg[from];
    ++shape->indegree_[to];
  }
  shape->succ_offset_.resize(n + 1);
  shape->succ_offset_[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    shape->succ_offset_[v + 1] = shape->succ_offset_[v] + outdeg[v];
  }
  shape->succ_.resize(edges.size());
  std::vector<std::uint32_t> cursor(shape->succ_offset_.begin(),
                                    shape->succ_offset_.end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    shape->succ_[cursor[shape->edge_from_[i]]++] = shape->edge_to_[i];
  }

  // Touched resources + per-resource compute sums (sorted by resource).
  std::vector<std::pair<std::uint32_t, Duration>> per_resource;
  for (std::size_t v = 0; v < n; ++v) {
    per_resource.emplace_back(shape->node_resource_[v],
                              shape->node_compute_[v]);
  }
  std::sort(per_resource.begin(), per_resource.end());
  for (const auto& [r, c] : per_resource) {
    if (!shape->touched_resources_.empty() &&
        shape->touched_resources_.back() == r) {
      shape->resource_compute_.back() += c;
    } else {
      shape->touched_resources_.push_back(r);
      shape->resource_compute_.push_back(c);
    }
  }

  enumerate_profiles(*shape);
  return shape;
}

void TaskGraphShapeRegistry::enumerate_profiles(TaskGraphShape& shape) {
  const std::size_t n = shape.num_nodes();
  const std::size_t width = shape.touched_resources_.size();
  // resource -> local position (touched_resources_ is sorted).
  auto local_of = [&](std::uint32_t r) {
    const auto it = std::lower_bound(shape.touched_resources_.begin(),
                                     shape.touched_resources_.end(), r);
    FRAP_ASSERT(it != shape.touched_resources_.end() && *it == r);
    return static_cast<std::size_t>(it - shape.touched_resources_.begin());
  };

  std::vector<std::vector<Mvec>> paths(n);   // Pareto sets per node
  std::vector<Mvec> env(n);                  // dropped-path envelope per node
  std::vector<std::uint32_t> uses_left(n, 0);  // successors not yet consumed
  for (std::size_t v = 0; v < n; ++v) {
    uses_left[v] = static_cast<std::uint32_t>(shape.successors(v).size());
  }
  // Predecessors per node, derived from the CSR.
  std::vector<std::vector<std::uint32_t>> pred(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint32_t s : shape.successors(v)) {
      pred[s].push_back(static_cast<std::uint32_t>(v));
    }
  }

  bool complete = true;
  std::vector<Mvec> finals;
  Mvec final_env;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t lv = local_of(shape.node_resource_[v]);
    std::vector<Mvec> cand;
    if (pred[v].empty()) {
      cand.emplace_back(width, 0u);
    } else {
      for (std::uint32_t u : pred[v]) {
        for (const Mvec& p : paths[u]) cand.push_back(p);
        if (!env[u].empty()) fold_max(env[v], env[u]);
      }
    }
    for (Mvec& p : cand) ++p[lv];
    if (!env[v].empty()) ++env[v][lv];
    if (prune_profiles(cand, kNodeProfileCap, env[v])) complete = false;
    paths[v] = std::move(cand);
    for (std::uint32_t u : pred[v]) {
      if (--uses_left[u] == 0) {
        paths[u].clear();
        paths[u].shrink_to_fit();
      }
    }
    if (shape.successors(v).empty()) {  // sink: collect
      for (const Mvec& p : paths[v]) finals.push_back(p);
      if (!env[v].empty()) fold_max(final_env, env[v]);
    }
  }
  if (prune_profiles(finals, kFinalProfileCap, final_env)) complete = false;

  shape.profiles_complete_ = complete;
  shape.profile_offset_.push_back(0);
  for (const Mvec& p : finals) {
    for (std::size_t i = 0; i < width; ++i) {
      if (p[i] > 0) {
        shape.profile_entries_.push_back(
            {static_cast<std::uint32_t>(i), p[i]});
      }
    }
    shape.profile_offset_.push_back(
        static_cast<std::uint32_t>(shape.profile_entries_.size()));
  }
  if (!complete) {
    FRAP_ASSERT(!final_env.empty());
    for (std::size_t i = 0; i < width; ++i) {
      if (final_env[i] > 0) {
        shape.envelope_.push_back({static_cast<std::uint32_t>(i),
                                   final_env[i]});
      }
    }
  }
}

const TaskGraphShape* TaskGraphShapeRegistry::intern(
    const GraphTaskSpec& spec) {
  CanonicalForm form = canonical_form(spec);
  auto& bucket = by_hash_[form.hash];
  for (std::uint32_t idx : bucket) {
    if (shapes_[idx]->encoding_ == form.encoding) {
      ++hits_;
      return shapes_[idx].get();
    }
  }
  ++misses_;
  auto shape = build_shape(spec, std::move(form));
  shape->id_ = shapes_.size();
  bucket.push_back(static_cast<std::uint32_t>(shapes_.size()));
  shapes_.push_back(std::move(shape));
  return shapes_.back().get();
}

GraphTaskSpec TaskGraphShapeRegistry::canonicalize(const GraphTaskSpec& spec) {
  const CanonicalForm form = canonical_form(spec);
  const TaskGraphShape* shape = nullptr;
  auto it = by_hash_.find(form.hash);
  if (it != by_hash_.end()) {
    for (std::uint32_t idx : it->second) {
      if (shapes_[idx]->encoding_ == form.encoding) {
        ++hits_;
        shape = shapes_[idx].get();
        break;
      }
    }
  }
  if (shape == nullptr) {
    ++misses_;
    auto built = build_shape(spec, form);
    built->id_ = shapes_.size();
    by_hash_[form.hash].push_back(static_cast<std::uint32_t>(shapes_.size()));
    shapes_.push_back(std::move(built));
    shape = shapes_.back().get();
  }

  GraphTaskSpec out;
  out.id = spec.id;
  out.deadline = spec.deadline;
  out.importance = spec.importance;
  out.shape = shape;
  out.nodes.resize(spec.nodes.size());
  for (std::size_t v = 0; v < spec.nodes.size(); ++v) {
    out.nodes[form.canon_of_original[v]] = spec.nodes[v];
  }
  out.edges.reserve(spec.edges.size());
  for (std::size_t i = 0; i < shape->num_edges(); ++i) {
    out.edges.push_back(GraphEdge{shape->edge_from_[i], shape->edge_to_[i]});
  }
  return out;
}

}  // namespace frap::core
