// Slot-map task-record store for the synthetic-utilization tracker.
//
// Replaces the PR-1 `unordered_map<id, TaskRecord>` (one map node + two
// heap vectors per task) with three allocation-free-in-steady-state pieces:
//
//   * a SLOT MAP: a dense vector of fixed-size slots with a free list and
//     generation-checked 64-bit handles. A handle packs (generation << 32 |
//     slot + 1); destroying a slot bumps its generation, so a stale handle
//     (held across the task's expiry or removal) is detected and rejected
//     instead of silently aliasing the slot's next tenant. Generations use
//     odd-means-live parity: a slot is live iff its generation is odd.
//   * compact CONTRIBUTION entries: instead of a dense per-stage vector a
//     task stores only the stages it touches, as (stage, value) pairs in
//     ascending stage order. Tasks touching <= kInlineEntries stages (the
//     overwhelming majority in pipeline workloads) keep the pairs inline in
//     the slot; wider tasks borrow a block from the arena.
//   * a pooled ARENA: one contiguous word buffer with power-of-two
//     size-class free lists, addressed by offsets (stable across the
//     buffer's growth reallocations). Blocks hold a packed departed bitmask
//     (one bit per touched entry) followed by the entry pairs.
//
// Departed flags are a packed bitmask over TOUCHED ENTRIES, not stages: a
// departure at a stage the task never touched has no observable effect (the
// strip would remove a zero contribution), so only touched stages need a
// bit. Inline tasks keep the mask word in the slot.
//
// The store knows nothing about utilization accounting or timers beyond
// stashing the expiry TimerId; SyntheticUtilizationTracker composes it with
// the per-stage state and the wheel (docs/perf_internals.md).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/timer_wheel.h"
#include "util/check.h"

namespace frap::core {

// Generation-checked stable handle to a task slot; 0 is never valid.
using TaskHandle = std::uint64_t;
inline constexpr TaskHandle kInvalidTaskHandle = 0;

class TaskStore {
 public:
  // Contribution pairs stored inline in the slot when a task touches at
  // most this many stages; wider tasks use an arena block.
  static constexpr std::uint32_t kInlineEntries = 4;
  static constexpr std::uint32_t kNoEntry = 0xffffffffu;

  TaskStore() = default;

  // Creates a record with `count` (stage, value) pairs from the parallel
  // arrays; stages must be strictly ascending, values > 0. Returns the new
  // handle. Amortized O(count); allocation-free once the pools are warm.
  TaskHandle create(std::uint64_t task_id, const std::uint32_t* stages,
                    const double* values, std::uint32_t count);

  // Frees the slot (generation bump invalidates outstanding handles) and
  // returns its arena block, if any, to the size-class pool.
  void destroy(TaskHandle h);

  // True while `h` refers to the record it was issued for.
  [[nodiscard]] bool live(TaskHandle h) const {
    const std::uint32_t raw = static_cast<std::uint32_t>(h & 0xffffffffu);
    if (raw == 0 || raw > slots_.size()) return false;
    const Slot& s = slots_[raw - 1];
    return s.gen == static_cast<std::uint32_t>(h >> 32) && (s.gen & 1u) != 0;
  }

  // Re-derives the current handle of a live slot (the id-map stores bare
  // slot indices; this puts the generation back on).
  [[nodiscard]] TaskHandle handle_at(std::uint32_t slot_index) const {
    FRAP_EXPECTS(slot_index < slots_.size());
    const Slot& s = slots_[slot_index];
    FRAP_EXPECTS((s.gen & 1u) != 0);
    return pack(slot_index, s.gen);
  }

  static std::uint32_t index_of(TaskHandle h) {
    return static_cast<std::uint32_t>(h & 0xffffffffu) - 1u;
  }

  [[nodiscard]] std::uint64_t task_id(TaskHandle h) const {
    return slot(h).task_id;
  }
  [[nodiscard]] std::uint32_t touched(TaskHandle h) const {
    return slot(h).touched;
  }
  [[nodiscard]] sim::TimerId expiry(TaskHandle h) const {
    return slot(h).expiry;
  }
  void set_expiry(TaskHandle h, sim::TimerId id) { slot(h).expiry = id; }

  // Entry accessors; `i` indexes the task's touched entries in ascending
  // stage order, i < touched(h).
  [[nodiscard]] std::uint32_t entry_stage(TaskHandle h, std::uint32_t i) const;
  [[nodiscard]] double entry_value(TaskHandle h, std::uint32_t i) const;
  void set_entry_value(TaskHandle h, std::uint32_t i, double v);
  [[nodiscard]] bool entry_departed(TaskHandle h, std::uint32_t i) const;
  void set_entry_departed(TaskHandle h, std::uint32_t i);

  // Entry index for `stage`, or kNoEntry when the task does not touch it.
  // Linear scan: touched counts are small and the entries are contiguous.
  [[nodiscard]] std::uint32_t find_entry(TaskHandle h,
                                         std::uint32_t stage) const;

  // Zeroes every entry with value > 0, calling fn(stage, value) for each in
  // ascending stage order — the expiry/removal strip walk, fused so the
  // handle is validated once instead of per entry accessor. fn must not
  // mutate this store (it may read it).
  template <typename F>
  void strip_entries(TaskHandle h, F&& fn) {
    Slot& s = slot(h);
    if (is_inline(s)) {
      for (std::uint32_t i = 0; i < s.touched; ++i) {
        const double v = s.inline_value[i];
        if (v > 0) {
          s.inline_value[i] = 0.0;
          fn(s.inline_stage[i], v);
        }
      }
      return;
    }
    std::uint64_t* block = arena_words_.data() + s.arena_off;
    const std::uint32_t mw = mask_words(s.touched);
    for (std::uint32_t i = 0; i < s.touched; ++i) {
      const double v = std::bit_cast<double>(block[mw + 2 * i]);
      if (v > 0) {
        block[mw + 2 * i] = std::bit_cast<std::uint64_t>(0.0);
        fn(static_cast<std::uint32_t>(block[mw + 2 * i + 1]), v);
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return live_; }

  // Visits every live handle (rescale path). Order is slot order, which is
  // arbitrary — callers must not derive decisions from it.
  template <typename F>
  void for_each(F&& fn) const {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if ((slots_[i].gen & 1u) != 0) fn(pack(i, slots_[i].gen));
    }
  }

  // Observability for the allocation tests: arena words currently pooled.
  [[nodiscard]] std::size_t arena_capacity_words() const {
    return arena_words_.size();
  }

 private:
  struct Slot {
    std::uint64_t task_id = 0;
    sim::TimerId expiry = sim::kInvalidTimerId;
    std::uint32_t gen = 0;       // odd = live
    std::uint32_t touched = 0;   // number of (stage, value) entries
    std::uint32_t arena_off = 0; // word offset of the arena block
    std::uint8_t arena_class = 0;  // log2 of the block size in words
    // Inline storage for narrow tasks (touched <= kInlineEntries):
    std::uint64_t inline_mask = 0;  // departed bits, one per entry
    double inline_value[kInlineEntries] = {0, 0, 0, 0};
    std::uint32_t inline_stage[kInlineEntries] = {0, 0, 0, 0};
  };

  static TaskHandle pack(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<TaskHandle>(gen) << 32) | (idx + 1u);
  }

  Slot& slot(TaskHandle h) {
    FRAP_EXPECTS(live(h));
    return slots_[index_of(h)];
  }
  const Slot& slot(TaskHandle h) const {
    FRAP_EXPECTS(live(h));
    return slots_[index_of(h)];
  }

  [[nodiscard]] static bool is_inline(const Slot& s) {
    return s.touched <= kInlineEntries;
  }
  // Arena block layout: ceil(touched/64) mask words, then per entry one
  // value word (double bits) and one stage word.
  [[nodiscard]] static std::uint32_t mask_words(std::uint32_t touched) {
    return (touched + 63u) / 64u;
  }
  [[nodiscard]] static std::uint32_t block_words(std::uint32_t touched) {
    return mask_words(touched) + 2u * touched;
  }

  std::uint32_t arena_alloc(std::uint32_t words, std::uint8_t& cls);
  void arena_free(std::uint32_t off, std::uint8_t cls);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;

  std::vector<std::uint64_t> arena_words_;
  // Free block offsets per power-of-two size class (class = log2 words).
  std::vector<std::uint32_t> arena_free_[32];
  // Blocks ever carved per class; arena_free_[c] is reserved to this count
  // so arena_free() never allocates.
  std::uint32_t arena_carved_[32] = {};
};

}  // namespace frap::core
