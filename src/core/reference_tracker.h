// TEST-ONLY reference utilization store.
//
// ReferenceUtilizationTracker is the PR-1 SyntheticUtilizationTracker
// implementation preserved verbatim: task records in an
// `unordered_map<id, TaskRecord>` with dense per-stage contribution vectors
// and `vector<bool>` departed flags, expiries as type-erased closures on the
// simulator's binary-heap EventQueue, departed queues keyed by raw task id.
// It exists so the slot-map/timer-wheel store (core/synthetic_utilization.h)
// can be proven bit-compatible: the differential A/B sweep
// (tests/store_differential_test.cpp) drives both stores through identical
// mutation sequences and asserts identical decisions and utilizations, and
// bench/micro_admission uses it as the PR-1 cost baseline.
//
// The public surface mirrors SyntheticUtilizationTracker exactly (including
// the incremental LHS cache), so harness code can be written once against
// either. It is NOT part of the production API: nothing in src/ outside the
// test/bench tree may depend on it.
//
// Known latent defect, kept faithfully: departed queues store raw ids, so a
// task id reused after remove_task can alias a stale queue entry onto the
// new task's contribution at the next idle reset. The slot-map store fixes
// this with generation-checked handles. The defect is now selectable:
// IdReuse::kFaithful (the default) reproduces the PR-1 behavior bit-for-bit
// so the A/B sweep and the pinning regression test
// (StoreDifferential.IdReuseAliasingPinned) still observe it; kCorrected
// tags every departed-queue entry with the task's add() epoch and drops
// entries whose epoch no longer matches, which is the same discipline the
// slot-map generations enforce. Faithful-mode differential harnesses must
// still not reuse ids (docs/perf_internals.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "metrics/counters.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/math.h"
#include "util/time.h"

namespace frap::testing {

class ReferenceUtilizationTracker {
 public:
  // Handling of departed-queue entries whose task id was reused after
  // remove_task (see the header comment).
  enum class IdReuse : std::uint8_t {
    kFaithful,   // raw-id matching: reused ids alias stale entries (PR-1 bug)
    kCorrected,  // epoch-checked: stale entries are dropped at idle reset
  };

  ReferenceUtilizationTracker(sim::Simulator& sim, std::size_t num_stages,
                              IdReuse id_reuse = IdReuse::kFaithful);

  std::size_t num_stages() const { return stage_.size(); }

  void set_idle_reset_enabled(bool enabled) { idle_reset_ = enabled; }

  void set_reservation(std::size_t stage, double value);
  double reservation(std::size_t stage) const;

  double utilization(std::size_t stage) const {
    FRAP_EXPECTS(stage < stage_.size());
    const StageState& s = stage_[stage];
    return s.reserved + std::max(0.0, s.dynamic);
  }

  std::vector<double> utilizations() const;

  void add(std::uint64_t task_id, std::span<const double> per_stage,
           Time absolute_deadline);

  void mark_departed(std::uint64_t task_id, std::size_t stage);

  void on_stage_idle(std::size_t stage);

  void remove_task(std::uint64_t task_id);

  void rescale_dynamic(double factor);

  void set_on_decrease(std::function<void()> cb) {
    on_decrease_ = std::move(cb);
  }

  double cached_lhs() const {
    if (saturated_stages_ > 0) return util::kInf;
    return std::max(0.0, finite_lhs_);
  }

  double stage_lhs_term(std::size_t stage) const {
    FRAP_EXPECTS(stage < stage_.size());
    return stage_[stage].f_term;
  }

  double rebuild_lhs_cache();

  void verify_lhs_cache(double tolerance = 1e-9);

  static constexpr std::uint64_t kLhsRebuildInterval = 4096;

  std::size_t live_tasks() const { return tasks_.size(); }

  [[nodiscard]] bool is_live(std::uint64_t task_id) const {
    return tasks_.find(task_id) != tasks_.end();
  }

 private:
  struct TaskRecord {
    std::vector<double> contribution;  // per stage; 0 = none/removed
    std::vector<bool> departed;        // subtask finished at stage
    sim::EventId expiry_event = sim::kInvalidEventId;
    std::uint64_t epoch = 0;  // add() sequence number (kCorrected matching)
  };

  struct QueueEntry {
    std::uint64_t id;
    std::uint64_t epoch;
  };

  struct StageState {
    double dynamic = 0;
    double reserved = 0;
    double f_term = 0;
    std::vector<QueueEntry> departed_queue;
  };

  void expire(std::uint64_t task_id);
  double strip_stage(TaskRecord& rec, std::size_t stage);
  void refresh_stage_lhs(std::size_t stage);
  void notify_decrease();

  sim::Simulator& sim_;
  std::vector<StageState> stage_;
  std::unordered_map<std::uint64_t, TaskRecord> tasks_;
  IdReuse id_reuse_ = IdReuse::kFaithful;
  std::uint64_t next_epoch_ = 0;
  bool idle_reset_ = true;
  std::function<void()> on_decrease_;

  double finite_lhs_ = 0;
  std::size_t saturated_stages_ = 0;
  std::uint64_t updates_since_rebuild_ = 0;
  metrics::CacheConsistency cache_stats_;
};

}  // namespace frap::testing
