// Geometry of the feasible region: how much of the utilization space the
// admission controller can actually use.
//
// The region { U in [0,1)^N : sum f(U_j) <= B } is convex; its volume is a
// policy-independent measure of admissible operating points, handy for
// comparing against baselines (the per-stage deadline-splitting region is
// the box [0, 0.586/N]^N in the same coordinates — strictly smaller).
// Volume is estimated by Monte Carlo over [0,1]^N (exact in N = 1).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/feasible_region.h"
#include "util/rng.h"

namespace frap::core {

// Monte Carlo estimate of the region's volume within the unit hypercube.
// Deterministic given the rng's seed. `samples` >= 1.
double region_volume_mc(const FeasibleRegion& region, std::size_t samples,
                        util::Rng& rng);

// Volume of the per-stage deadline-splitting admissible set in synthetic-
// utilization coordinates: each stage independently requires
// U_j <= uniprocessor_bound()/N, a box of volume (0.586/N)^N.
double deadline_split_volume(std::size_t num_stages);

// Exact volume for a single resource: the interval [0, f_inv(bound)].
double single_resource_volume(const FeasibleRegion& region);

}  // namespace frap::core
