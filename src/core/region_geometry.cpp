#include "core/region_geometry.h"

#include <cmath>
#include <vector>

#include "core/stage_delay.h"
#include "util/check.h"

namespace frap::core {

double region_volume_mc(const FeasibleRegion& region, std::size_t samples,
                        util::Rng& rng) {
  FRAP_EXPECTS(samples >= 1);
  const std::size_t n = region.num_stages();
  std::vector<double> point(n);
  std::size_t inside = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    for (auto& x : point) x = rng.uniform01();
    if (region.contains(point)) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(samples);
}

double deadline_split_volume(std::size_t num_stages) {
  FRAP_EXPECTS(num_stages >= 1);
  return std::pow(uniprocessor_bound() / static_cast<double>(num_stages),
                  static_cast<double>(num_stages));
}

double single_resource_volume(const FeasibleRegion& region) {
  FRAP_EXPECTS(region.num_stages() == 1);
  return stage_delay_factor_inverse(region.bound());
}

}  // namespace frap::core
