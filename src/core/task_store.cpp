#include "core/task_store.h"

#include <bit>

namespace frap::core {

namespace {

constexpr std::uint32_t kIndexLimit = 0xfffffffeu;

}  // namespace

std::uint32_t TaskStore::arena_alloc(std::uint32_t words, std::uint8_t& cls) {
  const std::uint32_t rounded = std::bit_ceil(words);
  cls = static_cast<std::uint8_t>(std::countr_zero(rounded));
  auto& pool = arena_free_[cls];
  if (!pool.empty()) {
    const std::uint32_t off = pool.back();
    pool.pop_back();
    return off;
  }
  const std::size_t off = arena_words_.size();
  FRAP_ASSERT(off + rounded <= kIndexLimit);
  arena_words_.resize(off + rounded);
  // Freeing never allocates: a class's free list can only hold offsets of
  // blocks carved here, so growing its capacity alongside the carve count
  // keeps arena_free() pure push-into-reserved-space (0-alloc invariant).
  ++arena_carved_[cls];
  pool.reserve(arena_carved_[cls]);
  return static_cast<std::uint32_t>(off);
}

void TaskStore::arena_free(std::uint32_t off, std::uint8_t cls) {
  arena_free_[cls].push_back(off);
}

// frap:contract(hotpath) -- steady-state creates are served from the free
// lists; the growth resize in arena_alloc only fires while warming up.
TaskHandle TaskStore::create(std::uint64_t task_id,
                             const std::uint32_t* stages, const double* values,
                             std::uint32_t count) {
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    FRAP_ASSERT(slots_.size() < kIndexLimit);
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
    // destroy() never allocates: the free list's capacity tracks the slot
    // count (its size is bounded by it), growing only here on the cold
    // pool-extension path, geometrically alongside slots_.
    free_slots_.reserve(slots_.capacity());
  }
  Slot& s = slots_[idx];
  ++s.gen;  // even (dead) -> odd (live)
  FRAP_ASSERT((s.gen & 1u) != 0);
  s.task_id = task_id;
  s.expiry = sim::kInvalidTimerId;
  s.touched = count;
  s.inline_mask = 0;
  if (count <= kInlineEntries) {
    for (std::uint32_t i = 0; i < count; ++i) {
      FRAP_EXPECTS(i == 0 || stages[i] > stages[i - 1]);
      s.inline_stage[i] = stages[i];
      s.inline_value[i] = values[i];
    }
  } else {
    s.arena_off = arena_alloc(block_words(count), s.arena_class);
    std::uint64_t* block = arena_words_.data() + s.arena_off;
    const std::uint32_t mw = mask_words(count);
    for (std::uint32_t w = 0; w < mw; ++w) block[w] = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      FRAP_EXPECTS(i == 0 || stages[i] > stages[i - 1]);
      block[mw + 2 * i] = std::bit_cast<std::uint64_t>(values[i]);
      block[mw + 2 * i + 1] = stages[i];
    }
  }
  ++live_;
  return pack(idx, s.gen);
}

// frap:contract(hotpath)
void TaskStore::destroy(TaskHandle h) {
  Slot& s = slot(h);
  if (!is_inline(s)) arena_free(s.arena_off, s.arena_class);
  ++s.gen;  // odd (live) -> even (dead); stale handles now mismatch
  s.expiry = sim::kInvalidTimerId;
  s.touched = 0;
  free_slots_.push_back(index_of(h));
  --live_;
}

std::uint32_t TaskStore::entry_stage(TaskHandle h, std::uint32_t i) const {
  const Slot& s = slot(h);
  FRAP_EXPECTS(i < s.touched);
  if (is_inline(s)) return s.inline_stage[i];
  const std::uint64_t* block = arena_words_.data() + s.arena_off;
  return static_cast<std::uint32_t>(block[mask_words(s.touched) + 2 * i + 1]);
}

double TaskStore::entry_value(TaskHandle h, std::uint32_t i) const {
  const Slot& s = slot(h);
  FRAP_EXPECTS(i < s.touched);
  if (is_inline(s)) return s.inline_value[i];
  const std::uint64_t* block = arena_words_.data() + s.arena_off;
  return std::bit_cast<double>(block[mask_words(s.touched) + 2 * i]);
}

void TaskStore::set_entry_value(TaskHandle h, std::uint32_t i, double v) {
  Slot& s = slot(h);
  FRAP_EXPECTS(i < s.touched);
  if (is_inline(s)) {
    s.inline_value[i] = v;
    return;
  }
  std::uint64_t* block = arena_words_.data() + s.arena_off;
  block[mask_words(s.touched) + 2 * i] = std::bit_cast<std::uint64_t>(v);
}

bool TaskStore::entry_departed(TaskHandle h, std::uint32_t i) const {
  const Slot& s = slot(h);
  FRAP_EXPECTS(i < s.touched);
  const std::uint64_t word =
      is_inline(s) ? s.inline_mask : arena_words_[s.arena_off + i / 64u];
  return (word >> (i % 64u)) & 1u;
}

void TaskStore::set_entry_departed(TaskHandle h, std::uint32_t i) {
  Slot& s = slot(h);
  FRAP_EXPECTS(i < s.touched);
  const std::uint64_t bit = std::uint64_t{1} << (i % 64u);
  if (is_inline(s)) {
    s.inline_mask |= bit;
  } else {
    arena_words_[s.arena_off + i / 64u] |= bit;
  }
}

std::uint32_t TaskStore::find_entry(TaskHandle h, std::uint32_t stage) const {
  const Slot& s = slot(h);
  if (is_inline(s)) {
    for (std::uint32_t i = 0; i < s.touched; ++i) {
      if (s.inline_stage[i] == stage) return i;
    }
    return kNoEntry;
  }
  const std::uint64_t* block = arena_words_.data() + s.arena_off;
  const std::uint32_t mw = mask_words(s.touched);
  for (std::uint32_t i = 0; i < s.touched; ++i) {
    if (static_cast<std::uint32_t>(block[mw + 2 * i + 1]) == stage) return i;
  }
  return kNoEntry;
}

}  // namespace frap::core
