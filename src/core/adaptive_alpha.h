// Adaptive-alpha admission control (an extension beyond the paper).
//
// Eq. 12 needs the urgency-inversion parameter alpha of the scheduling
// policy, which is easy to state for DM (alpha = 1) or a known deadline
// range, but unknown for ad-hoc priority assignments. This controller
// learns alpha online: each candidate task is tested against the alpha its
// own arrival would induce over the history of admitted tasks
// (OnlineAlphaEstimator::preview), and the estimator is updated only on
// admission.
//
// Soundness argument: alpha only ratchets down, and an admitted task's
// test used an alpha valid for the task mix including itself; earlier
// admissions used a larger-or-equal alpha over a subset of the inversions,
// and the region inequality they satisfied still holds a fortiori when the
// utilization test passes with the new, smaller alpha. (Verified
// empirically by the zero-miss integration tests.)
#pragma once

#include <cstdint>

#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sched/priority.h"
#include "sched/urgency.h"
#include "sim/simulator.h"

namespace frap::core {

struct AdaptiveDecision {
  bool admitted = false;
  double alpha_used = 1.0;  // the alpha the test ran against
  double lhs = 0;           // region LHS including the candidate
};

class AdaptiveAlphaAdmissionController {
 public:
  AdaptiveAlphaAdmissionController(sim::Simulator& sim,
                                   SyntheticUtilizationTracker& tracker);

  // Tests the task given the priority value the scheduler will use for it.
  // On admission, commits contributions and updates the alpha estimate.
  [[nodiscard]] AdaptiveDecision try_admit(const TaskSpec& spec,
                                           sched::PriorityValue priority);

  // Current learned alpha (1 until an inversion has been admitted).
  double alpha() const { return estimator_.alpha(); }

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t admitted() const { return admitted_; }

 private:
  sim::Simulator& sim_;
  SyntheticUtilizationTracker& tracker_;
  sched::OnlineAlphaEstimator estimator_;
  std::vector<double> scratch_add_;  // reused contribution buffer
  std::vector<double> scratch_u_;    // reused utilization snapshot buffer
  std::uint64_t attempts_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace frap::core
