// Structured admission-decision history.
//
// Operators debugging "why was this task rejected at 14:03?" need the
// decision record: the region LHS before and with the task, and the margin
// to the bound at that instant. The audit attaches to an
// AdmissionController and keeps a (optionally bounded) log plus running
// summaries.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "metrics/counters.h"
#include "util/time.h"

namespace frap::core {

struct AuditRecord {
  Time time = kTimeZero;
  std::uint64_t task_id = 0;
  bool admitted = false;
  double lhs_before = 0;
  double lhs_with_task = 0;
  double bound = 0;

  // Slack that remained after the decision: bound - lhs_with_task for
  // admissions, bound - lhs_before for rejections (the state kept).
  double remaining_margin() const {
    return bound - (admitted ? lhs_with_task : lhs_before);
  }
};

class AdmissionAudit {
 public:
  // capacity 0 = unbounded; otherwise a ring keeping the newest records.
  explicit AdmissionAudit(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(const AuditRecord& r);

  std::size_t size() const { return records_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  // i = 0 is the OLDEST retained record.
  const AuditRecord& operator[](std::size_t i) const;

  // Rolling summaries over everything ever recorded (not just retained).
  const metrics::RatioTracker& acceptance() const { return acceptance_; }
  const metrics::RunningStats& admitted_margin() const {
    return admitted_margin_;
  }
  // LHS values that rejections were tested at — how far over the boundary
  // demand was pushing.
  const metrics::RunningStats& rejected_lhs() const { return rejected_lhs_; }

  // Tab-separated dump: time, task, verdict, lhs_before, lhs_with, bound.
  void dump(std::ostream& os) const;

 private:
  std::vector<AuditRecord> records_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
  metrics::RatioTracker acceptance_;
  metrics::RunningStats admitted_margin_;
  metrics::RunningStats rejected_lhs_;
};

}  // namespace frap::core
