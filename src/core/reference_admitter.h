// TEST-ONLY reference admission path.
//
// ReferenceAdmitter wraps an AdmissionController and decides tasks with the
// original full O(N) evaluation: materialize the contribution vector, copy
// the utilization snapshot, evaluate the whole-region LHS twice. It shares
// the wrapped controller's tracker, region, counters, and audit, so its
// decisions and side effects are interchangeable with the incremental fast
// path — which is exactly why it exists: the A/B identity tests
// (tests/admission_fastpath_test.cpp, tests/sharded_admission_test.cpp) and
// bench/micro_admission drive both paths against the same state and assert
// they never disagree.
//
// It is NOT part of the production API: production callers use the
// Admitter interface (src/service/admitter.h); nothing in src/ outside of
// this pair of files may depend on it.
#pragma once

#include "core/admission.h"
#include "service/admitter.h"

namespace frap::testing {

class ReferenceAdmitter : public Admitter {
 public:
  explicit ReferenceAdmitter(core::AdmissionController& inner)
      : inner_(inner) {}

  // Full-evaluation twin of inner.try_admit(spec, now): same decision, same
  // commit, same counters and audit records.
  [[nodiscard]] core::AdmissionDecision try_admit(const core::TaskSpec& spec,
                                                  Time now) override;

  // Shim mirroring the controllers': forwards the simulator clock.
  [[nodiscard]] core::AdmissionDecision try_admit(const core::TaskSpec& spec) {
    return try_admit(spec, inner_.now());
  }

  core::AdmissionController& inner() { return inner_; }

 private:
  core::AdmissionController& inner_;
};

}  // namespace frap::testing
