#include "core/admission_audit.h"

#include <cmath>

#include "util/check.h"

namespace frap::core {

void AdmissionAudit::record(const AuditRecord& r) {
  acceptance_.record(r.admitted);
  if (r.admitted) {
    admitted_margin_.add(r.remaining_margin());
  } else if (std::isfinite(r.lhs_with_task)) {
    rejected_lhs_.add(r.lhs_with_task);
  }
  if (capacity_ == 0 || records_.size() < capacity_) {
    records_.push_back(r);
    return;
  }
  records_[head_] = r;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

const AuditRecord& AdmissionAudit::operator[](std::size_t i) const {
  FRAP_EXPECTS(i < records_.size());
  return records_[(head_ + i) % records_.size()];
}

void AdmissionAudit::dump(std::ostream& os) const {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const AuditRecord& r = (*this)[i];
    os << r.time << '\t' << r.task_id << '\t'
       << (r.admitted ? "admit" : "reject") << '\t' << r.lhs_before << '\t'
       << r.lhs_with_task << '\t' << r.bound << '\n';
  }
}

}  // namespace frap::core
