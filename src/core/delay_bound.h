// Worst-case delay prediction from Theorem 1.
//
// Given (upper bounds on) per-stage synthetic utilizations, Theorem 1
// bounds the residence time of a task on stage j by f(U_j) * D_max, where
// D_max is the largest relative deadline among interfering higher-priority
// tasks. Summing over a pipeline (or taking the critical path over a DAG)
// yields a worst-case end-to-end delay — usable as an admission-time
// latency estimate ("if admitted now, how late could this task be?") and
// validated end-to-end by the integration tests (no observed response time
// ever exceeds the bound computed from peak utilizations).
#pragma once

#include <span>

#include "core/task.h"
#include "core/task_graph.h"
#include "util/time.h"

namespace frap::core {

// Worst-case residence at one stage (Theorem 1): f(u) * d_max, plus
// optional per-stage blocking b (Sec. 3.2). Returns +infinity when u >= 1.
Duration predict_stage_delay(double u, Duration d_max, Duration blocking = 0);

// Worst-case end-to-end delay of a pipeline task given per-stage
// utilization bounds. d_max is the largest relative deadline among tasks
// that can delay this one (under DM: this task's own deadline bounds it,
// since only shorter-deadline tasks have higher priority).
// utilizations.size() defines the pipeline length.
Duration predict_pipeline_delay(std::span<const double> utilizations,
                                Duration d_max);

// Worst-case end-to-end delay of a DAG task: critical path of per-node
// stage delays (Theorem 2's d(L_1..L_M)).
Duration predict_graph_delay(const GraphTaskSpec& task,
                             std::span<const double> utilizations,
                             Duration d_max);

// Convenience for admission diagnostics: would this task provably meet its
// deadline if admitted now (utilizations INCLUDING its own contribution)?
// Under DM, d_max = spec.deadline. Equivalent to the Eq. 13 test scaled by
// the deadline; exposed separately because the *delay value* is what
// operators want to log.
[[nodiscard]] bool provably_meets_deadline(
    const TaskSpec& spec, std::span<const double> utilizations);

}  // namespace frap::core
