#include "core/certification.h"

#include "util/check.h"

namespace frap::core {

ScenarioCertifier::ScenarioCertifier(
    FeasibleRegion region, std::vector<ReservationPlanner::StageRule> rules)
    : region_(std::move(region)), rules_(std::move(rules)) {
  FRAP_EXPECTS(rules_.size() == region_.num_stages());
}

std::size_t ScenarioCertifier::add(CatalogEntry entry) {
  FRAP_EXPECTS(entry.contributions.size() == region_.num_stages());
  for (double c : entry.contributions) FRAP_EXPECTS(c >= 0);
  catalog_.push_back(std::move(entry));
  return catalog_.size() - 1;
}

ScenarioVerdict ScenarioCertifier::certify(
    const std::vector<std::size_t>& members) const {
  ReservationPlanner planner(rules_);
  for (std::size_t i : members) {
    FRAP_EXPECTS(i < catalog_.size());
    planner.add_contributions(catalog_[i].contributions);
  }
  ScenarioVerdict v;
  v.members = members;
  v.lhs = planner.certification_lhs(region_);
  v.certified = planner.certifies(region_);
  return v;
}

std::vector<ScenarioVerdict> ScenarioCertifier::certify_all_subsets() const {
  FRAP_EXPECTS(catalog_.size() <= 20);
  const std::size_t n = catalog_.size();
  const std::uint32_t subsets = 1u << n;
  std::vector<ScenarioVerdict> verdicts;
  verdicts.reserve(subsets);
  for (std::uint32_t mask = 0; mask < subsets; ++mask) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) members.push_back(i);
    }
    verdicts.push_back(certify(members));
  }
  return verdicts;
}

bool ScenarioCertifier::all_combinations_certified() const {
  // Monotonicity shortcut: contributions are non-negative and the region
  // LHS is monotone, so the full catalog dominates every subset.
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < catalog_.size(); ++i) all.push_back(i);
  return certify(all).certified;
}

ScenarioVerdict ScenarioCertifier::largest_certified_subset() const {
  ScenarioVerdict best;
  best.certified = false;
  for (const auto& v : certify_all_subsets()) {
    if (v.certified &&
        (!best.certified || v.members.size() > best.members.size())) {
      best = v;
    }
  }
  return best;
}

}  // namespace frap::core
