#include "core/reservation.h"

#include <algorithm>

#include "util/check.h"

namespace frap::core {

ReservationPlanner::ReservationPlanner(std::vector<StageRule> rules)
    : rules_(std::move(rules)),
      sum_(rules_.size(), 0.0),
      max_(rules_.size(), 0.0) {
  FRAP_EXPECTS(!rules_.empty());
}

void ReservationPlanner::add_contributions(
    const std::vector<double>& per_stage) {
  FRAP_EXPECTS(per_stage.size() == rules_.size());
  for (std::size_t j = 0; j < rules_.size(); ++j) {
    FRAP_EXPECTS(per_stage[j] >= 0);
    sum_[j] += per_stage[j];
    max_[j] = std::max(max_[j], per_stage[j]);
  }
}

void ReservationPlanner::add_task(const TaskSpec& spec) {
  FRAP_EXPECTS(spec.valid());
  add_contributions(spec.contributions());
}

std::vector<double> ReservationPlanner::reserved() const {
  std::vector<double> r(rules_.size());
  for (std::size_t j = 0; j < rules_.size(); ++j) {
    r[j] = rules_[j] == StageRule::kSum ? sum_[j] : max_[j];
  }
  return r;
}

double ReservationPlanner::certification_lhs(
    const FeasibleRegion& region) const {
  return region.lhs(reserved());
}

bool ReservationPlanner::certifies(const FeasibleRegion& region) const {
  return region.contains(reserved());
}

void ReservationPlanner::apply(SyntheticUtilizationTracker& tracker) const {
  FRAP_EXPECTS(tracker.num_stages() == rules_.size());
  const auto r = reserved();
  for (std::size_t j = 0; j < rules_.size(); ++j) {
    tracker.set_reservation(j, r[j]);
  }
}

}  // namespace frap::core
