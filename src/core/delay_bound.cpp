#include "core/delay_bound.h"

#include <vector>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

Duration predict_stage_delay(double u, Duration d_max, Duration blocking) {
  FRAP_EXPECTS(d_max >= 0);
  FRAP_EXPECTS(blocking >= 0);
  if (u >= 1.0) return util::kInf;
  return stage_delay_factor(u) * d_max + blocking;
}

Duration predict_pipeline_delay(std::span<const double> utilizations,
                                Duration d_max) {
  Duration total = 0;
  for (double u : utilizations) {
    const Duration l = predict_stage_delay(u, d_max);
    if (l == util::kInf) return util::kInf;
    total += l;
  }
  return total;
}

Duration predict_graph_delay(const GraphTaskSpec& task,
                             std::span<const double> utilizations,
                             Duration d_max) {
  std::vector<double> weights(task.nodes.size());
  for (std::size_t i = 0; i < task.nodes.size(); ++i) {
    const std::size_t r = task.nodes[i].resource;
    FRAP_EXPECTS(r < utilizations.size());
    if (utilizations[r] >= 1.0) return util::kInf;
    weights[i] = stage_delay_factor(utilizations[r]) * d_max;
  }
  return task.critical_path(weights);
}

bool provably_meets_deadline(const TaskSpec& spec,
                             std::span<const double> utilizations) {
  FRAP_EXPECTS(spec.valid());
  // Under deadline-monotonic scheduling, only tasks with deadlines no
  // longer than spec's can delay it, so D_max <= spec.deadline.
  return predict_pipeline_delay(utilizations, spec.deadline) <=
         spec.deadline;
}

}  // namespace frap::core
