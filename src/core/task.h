// The aperiodic end-to-end task model (Sec. 2 of the paper).
//
// A task T_i arrives at the first pipeline stage at time A_i, carries a
// relative end-to-end deadline D_i, and needs computation C_ij on each stage
// j in order. Critical sections (Sec. 3.2) are expressed by splitting a
// stage's demand into segments, some of which hold a stage-local lock.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/job.h"
#include "util/time.h"

namespace frap::core {

// Demand of one subtask on one stage.
struct StageDemand {
  // Total execution time C_ij. If `segments` is empty the demand is one
  // lock-free segment of this length; otherwise `segments` must sum to it.
  Duration compute = 0;
  std::vector<sched::Segment> segments;

  // Materializes the segment list (single lock-free segment when none given).
  std::vector<sched::Segment> make_segments() const;

  // Validates internal consistency (segments sum to compute).
  [[nodiscard]] bool valid() const;
};

struct TaskSpec {
  std::uint64_t id = 0;
  Duration deadline = 0;    // relative end-to-end deadline D_i
  double importance = 0;    // semantic importance; larger = more important
  std::vector<StageDemand> stages;  // one entry per pipeline stage

  std::size_t num_stages() const { return stages.size(); }

  // Sum of C_ij over all stages.
  Duration total_compute() const;

  // Per-stage synthetic-utilization contribution C_ij / D_i.
  std::vector<double> contributions() const;

  [[nodiscard]] bool valid() const;
};

}  // namespace frap::core
