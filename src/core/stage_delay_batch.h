// Batch evaluation of the stage-delay factor f(U) = U(1 - U/2)/(1 - U).
//
// The burst admission path (BatchAdmissionController::try_admit_burst)
// evaluates f across every stage of every spec; this kernel computes a whole
// utilization vector in one call. On x86-64 an AVX2 variant (runtime
// dispatched, no special build flags — the function carries a target
// attribute) processes four lanes per iteration; everywhere else, and for
// the tail lanes, the scalar stage_delay_factor runs.
//
// BIT-IDENTITY CONTRACT: the AVX2 lanes execute exactly the scalar kernel's
// operation sequence — t = u/2; a = 1 - t; b = u*a; d = 1 - u; r = b/d —
// with one IEEE double op per step and no FMA contraction (the expression
// has no mul-add pair to fuse), then blend +infinity into lanes with
// u >= 1. Every output double is therefore bit-identical to
// stage_delay_factor(u), which tests/simd_batch_test.cpp sweeps exhaustively
// and which makes burst decisions independent of the dispatch outcome.
//
// Caller contract: every u[i] >= 0 (the scalar kernel's precondition; the
// vector lanes do not re-assert it).
#pragma once

#include <cstddef>

namespace frap::core {

// out[i] = stage_delay_factor(u[i]) for i in [0, n). `out` may not alias
// `u`. Uses AVX2 when available and enabled, scalar otherwise.
void batch_stage_delay_factors(const double* u, double* out, std::size_t n);

// True when this build/CPU can dispatch the AVX2 kernel at all.
[[nodiscard]] bool batch_simd_available();

// Test/bench seam: force the scalar fallback (false) or restore automatic
// dispatch (true). Returns the previous setting (restore it when done). NOT
// thread-safe — flip it only from single-threaded setup code (A/B identity
// tests, benchmarks).
[[nodiscard]] bool set_batch_simd_enabled(bool enabled);

// Effective dispatch: available AND enabled.
[[nodiscard]] bool batch_simd_active();

}  // namespace frap::core
