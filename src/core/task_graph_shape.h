// Hash-consed task-graph shapes (docs/dag_bounds.md).
//
// A production deployment runs millions of concurrent DAG tasks that share
// a few hundred graph *shapes*: the topology, the per-node resource
// assignment, and the per-node demand layout are fixed per request class;
// only the id, the deadline, and the arrival instant vary per task. The
// registry here interns each shape once, so every per-shape cost — the
// topological order, the CSR adjacency, and most importantly the dominant
// long-path profiles the long-path admission bound evaluates — is paid at
// registration, not per admission.
//
// Canonicalization: two GraphTaskSpecs intern to the same shape when they
// are isomorphic INCLUDING node attributes (resource and demand): permuting
// node ids must alias, changing a demand must not. Node order is
// canonicalized by (longest-path depth, Weisfeiler-Leman refinement color);
// equality on a hash hit compares the full canonical encoding, so a hash
// collision can never alias two distinct shapes. Graphs whose WL colors
// stay non-discrete (large non-trivial automorphism-like tie classes) may
// intern two isomorphic presentations as separate shapes — a cache miss,
// never a correctness issue.
//
// Dominant path profiles: the long-path bound needs, for nonnegative
// per-resource weights w, the value max over source->sink paths P of
// sum_{i in P} w[resource(i)]. A path only enters through its *resource
// multiplicity vector* m_P (how often P visits each resource), and for
// w >= 0 the maximum is attained on a Pareto-maximal m_P. The enumeration
// below keeps, per node, the Pareto frontier of path profiles ending there
// (capped; overflow folds into a componentwise-max envelope that stays an
// upper bound on every dropped path). When `profiles_complete()` the kept
// profiles evaluate the path maximum EXACTLY in O(profiles * nnz),
// independent of graph size; otherwise the envelope gives a sound admit
// fast path and the evaluator falls back to the exact DP in the gray band
// (core/long_path_bound.h).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/task_graph.h"
#include "util/time.h"

namespace frap::core {

class TaskGraphShape {
 public:
  // Registry-assigned dense id (index into registry order).
  std::uint64_t id() const { return id_; }
  std::uint64_t hash() const { return hash_; }

  std::size_t num_nodes() const { return node_resource_.size(); }
  std::size_t num_edges() const { return edge_to_.size(); }

  // Canonical per-node layout. Canonical order is topological: every edge
  // goes from a lower to a higher canonical index.
  std::span<const std::uint32_t> node_resource() const {
    return node_resource_;
  }
  std::span<const Duration> node_compute() const { return node_compute_; }

  // CSR successor adjacency over canonical node ids.
  std::span<const std::uint32_t> successors(std::size_t node) const {
    return {succ_.data() + succ_offset_[node],
            succ_offset_[node + 1] - succ_offset_[node]};
  }
  std::span<const std::uint32_t> indegree() const { return indegree_; }

  // Resources this shape touches (sorted, unique) and the total compute the
  // shape places on each (same order). A task's per-resource contribution
  // is resource_compute[k] / deadline — O(touched resources), no node walk.
  std::span<const std::uint32_t> touched_resources() const {
    return touched_resources_;
  }
  std::span<const Duration> resource_compute() const {
    return resource_compute_;
  }

  // --- dominant long-path profiles --------------------------------------
  // Sparse multiplicity vectors over touched-resource positions: profile p
  // spans entries [profile_offset(p), profile_offset(p+1)) of
  // profile_entries(). Entry (local, mult): `local` indexes into
  // touched_resources().
  struct ProfileEntry {
    std::uint32_t local = 0;  // index into touched_resources()
    std::uint32_t mult = 0;   // visits along the path
  };
  std::size_t num_profiles() const { return profile_offset_.size() - 1; }
  std::span<const ProfileEntry> profile(std::size_t p) const {
    return {profile_entries_.data() + profile_offset_[p],
            profile_offset_[p + 1] - profile_offset_[p]};
  }

  // True when the kept profiles are the COMPLETE Pareto frontier: the path
  // maximum over them is exact for any nonnegative weights.
  [[nodiscard]] bool profiles_complete() const { return profiles_complete_; }

  // Componentwise-max envelope over every path profile dropped by the caps
  // (empty when profiles_complete()). For w >= 0, max(kept, envelope) is an
  // upper bound on the true path maximum.
  std::span<const ProfileEntry> envelope() const { return envelope_; }

  // True when `spec`'s node/edge layout equals this shape verbatim (same
  // order — i.e. the spec is already in canonical form). O(V + E); the DAG
  // runtime uses it as a debug-mode guard before borrowing the CSR.
  [[nodiscard]] bool layout_matches(const GraphTaskSpec& spec) const;

  // Longest source->sink path with per-node weights w[resource(node)],
  // computed by the exact DP over the canonical CSR into caller scratch
  // (resized to num_nodes()). Reference / fallback path for the evaluator.
  [[nodiscard]] double longest_path_weight(
      std::span<const double> weight_by_resource,
      std::vector<double>& scratch_dist) const;

 private:
  friend class TaskGraphShapeRegistry;
  TaskGraphShape() = default;

  std::uint64_t id_ = 0;
  std::uint64_t hash_ = 0;
  std::vector<std::uint64_t> encoding_;  // canonical bytes; equality proof

  std::vector<std::uint32_t> node_resource_;
  std::vector<Duration> node_compute_;
  std::vector<std::uint32_t> edge_from_;  // canonical, lexicographic
  std::vector<std::uint32_t> edge_to_;
  std::vector<std::uint32_t> succ_offset_;
  std::vector<std::uint32_t> succ_;
  std::vector<std::uint32_t> indegree_;

  std::vector<std::uint32_t> touched_resources_;
  std::vector<Duration> resource_compute_;

  std::vector<ProfileEntry> profile_entries_;
  std::vector<std::uint32_t> profile_offset_;
  std::vector<ProfileEntry> envelope_;
  bool profiles_complete_ = true;
};

// Hash-consing registry. Owns the shapes; pointers remain stable for the
// registry's lifetime (admission controllers and runtimes keep them).
// Single-threaded like the rest of the simulator core (frap-lint R5); the
// sharded service would shard registries alongside trackers.
class TaskGraphShapeRegistry {
 public:
  // Per-node Pareto-set cap during profile enumeration, and the cap on the
  // final kept profile count. Overflow folds into the envelope and clears
  // profiles_complete().
  static constexpr std::size_t kNodeProfileCap = 8;
  static constexpr std::size_t kFinalProfileCap = 16;

  TaskGraphShapeRegistry() = default;
  TaskGraphShapeRegistry(const TaskGraphShapeRegistry&) = delete;
  TaskGraphShapeRegistry& operator=(const TaskGraphShapeRegistry&) = delete;

  // Interns the spec's shape: returns the existing shape when an
  // attribute-isomorphic one is registered, otherwise canonicalizes,
  // enumerates profiles, and registers a new one. Requires
  // spec.valid(num_resources) for any num_resources > max node resource.
  const TaskGraphShape* intern(const GraphTaskSpec& spec);

  // Canonicalized copy of `spec` (nodes permuted into the shape's canonical
  // order, edges rewritten) with its `shape` pointer set — the form the DAG
  // runtime executes without rebuilding adjacency per task.
  [[nodiscard]] GraphTaskSpec canonicalize(const GraphTaskSpec& spec);

  std::size_t size() const { return shapes_.size(); }
  const TaskGraphShape& shape(std::size_t i) const { return *shapes_[i]; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct CanonicalForm {
    std::vector<std::uint32_t> canon_of_original;  // original id -> canonical
    std::vector<std::uint64_t> encoding;
    std::uint64_t hash = 0;
  };
  static CanonicalForm canonical_form(const GraphTaskSpec& spec);
  static std::unique_ptr<TaskGraphShape> build_shape(
      const GraphTaskSpec& spec, CanonicalForm form);
  static void enumerate_profiles(TaskGraphShape& shape);

  std::vector<std::unique_ptr<TaskGraphShape>> shapes_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace frap::core
