// Long-path admission bound for DAG tasks (docs/dag_bounds.md).
//
// Theorem 2 admits a DAG task by pushing the per-stage delay f(U_k)·D_max
// through the single critical path and comparing against alpha·(1 - Σβ).
// Following He et al. (*Bounding the Response Time of DAG Tasks Using Long
// Paths*), evaluating EVERY source->sink path with per-path constants
// strictly dominates the single-path test. The instantiation here keeps the
// paper's per-stage delay (Theorem 1) and tightens the two global constants
// into per-task / per-resource ones:
//
//     for every path P:   Σ_{i in P} [ f(U_{k_i}) · D̂_{k_i} / D_n
//                                       + β_{k_i} ]   <=   1
//
// where D_n is THIS task's relative deadline and D̂_k is a static
// per-resource deadline ceiling with the contract that every admitted task
// touching resource k has D_n <= D̂_k (enforced per evaluation). Theorem 1
// then bounds the node's residence by f(U_k)·D̂_k for ANY fixed-priority
// order — the ceiling plays D_max's role per resource — and B_k <= β_k·D_n
// bounds blocking, so the condition above makes every path's delay <= D_n.
// The critical-path test is the special case that collapses D_n/D̂_k to the
// worst-case alpha = D_min/D_max and splits the f- and β-paths; the
// dominance proof is in docs/dag_bounds.md.
//
// Evaluation cost: with an interned shape (core/task_graph_shape.h) the
// per-path maximum is taken over the shape's cached dominant path profiles
// in O(touched resources + profile entries), INDEPENDENT of graph size, and
// the "before" value reuses the tracker's cached per-stage f-terms. When
// the profile set is capped the envelope gives a sound admit fast path and
// the exact DP runs only in the gray band — decisions always equal the
// exact all-paths test. Without a shape the evaluator falls back to the
// exact per-node DP (reference path).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "core/task_graph_shape.h"

namespace frap::core {

class LongPathEvaluator {
 public:
  // Normalized per-path delay budget: the RHS of the condition above. Every
  // admission comparison against it goes through FeasibleRegion::admits_lhs.
  static constexpr double kDelayBudget = 1.0;

  // deadline_ceiling[k] = D̂_k (> 0, finite) per resource. beta[k] is the
  // normalized PCP blocking per resource; empty = all zeros.
  //
  // stage_cap is the victim guard: a per-resource ceiling on f(U_k) itself.
  // The per-path budget above is verified for the NEWCOMER at its admission
  // instant, but a later admission can still raise U_k under tasks admitted
  // earlier with tighter deadlines. Capping every touched f-term at
  // alpha·(1 - betâ) — the same per-resource state envelope every
  // critical-path admission enforces (a single node's f-term never exceeds
  // the path sum) — pins the global state invariant those victims relied
  // on. A touched f-term above the cap maps to +inf weight, so the verdict
  // still flows through one admits_lhs comparison (frap-lint R2). Any
  // critical-path admit satisfies the cap by construction, which is what
  // keeps the dominance direction exact (docs/dag_bounds.md). Pass +inf to
  // disable (admission-instant guarantee only).
  LongPathEvaluator(std::vector<double> deadline_ceiling,
                    std::vector<double> beta,
                    double stage_cap = kNoStageCap);

  static constexpr double kNoStageCap =
      std::numeric_limits<double>::infinity();
  double stage_cap() const { return stage_cap_; }

  std::size_t num_resources() const { return ceiling_.size(); }
  double deadline_ceiling(std::size_t k) const { return ceiling_[k]; }

  // True when the spec honors the static ceiling contract on every touched
  // resource (D_n <= D̂_k). Admission aborts on violation; callers that
  // generate tasks use this to pre-filter.
  [[nodiscard]] bool respects_ceilings(const GraphTaskSpec& spec) const;

  struct Eval {
    double lhs_before = 0;     // path value of the current state
    double lhs_with_task = 0;  // path value with the task's contribution
    bool admitted = false;     // admits_lhs(lhs_with_task, kDelayBudget)
  };

  // Incremental admission evaluation: requires spec.shape (a canonicalized
  // spec). Reads the tracker's cached per-stage f-terms for the "before"
  // weights and recomputes f only at the touched resources for the "with
  // task" weights; O(touched + profile entries), no graph walk, and no heap
  // allocation once the evaluator's scratch is warm. Debug builds cross-
  // check both values bit-exactly against recompute-from-snapshot.
  [[nodiscard]] Eval evaluate(const GraphTaskSpec& spec,
                              const SyntheticUtilizationTracker& tracker);

  // Reference evaluation from an explicit utilization snapshot. With a
  // shape this runs the identical profile logic as evaluate() (bit-identical
  // values given bit-identical utilizations — the identity test's hook);
  // without one it runs the exact per-node DP over the spec.
  [[nodiscard]] double lhs_from_snapshot(const GraphTaskSpec& spec,
                                         std::span<const double> utilizations);

  [[nodiscard]] bool feasible(const GraphTaskSpec& spec,
                              std::span<const double> utilizations) {
    return FeasibleRegion::admits_lhs(lhs_from_snapshot(spec, utilizations),
                                      kDelayBudget);
  }

  // Exact all-paths value (per-node DP), bypassing the profile fast path;
  // the differential and property tests compare against it.
  [[nodiscard]] double exact_lhs_from_snapshot(
      const GraphTaskSpec& spec, std::span<const double> utilizations);

  // Gray-band fallbacks taken (profile value inconclusive, exact DP ran).
  std::uint64_t dp_fallbacks() const { return dp_fallbacks_; }

 private:
  // Per-resource weight at touched position t of `shape`, given that
  // resource's f-term: f · D̂_k/D_n + β_k. Aborts on a ceiling violation.
  double weight_of(std::size_t k, double f_term, Duration deadline,
                   double inv_deadline) const;

  // Max path value over the shape's cached profiles; exact when the profile
  // set is complete, else envelope admit / kept reject / DP gray band.
  // w_local holds one weight per touched resource of the shape.
  double path_value(const TaskGraphShape& shape,
                    std::span<const double> w_local);

  std::vector<double> ceiling_;
  std::vector<double> beta_;
  double stage_cap_ = kNoStageCap;

  // Reused scratch (sized on first use, stable after warmup).
  std::vector<double> w_before_;
  std::vector<double> w_with_;
  std::vector<double> w_resource_;  // dense per-resource weights for the DP
  std::vector<double> dp_dist_;
  std::vector<double> dbg_u_;  // debug cross-check snapshot (kept heap-free)
  std::uint64_t dp_fallbacks_ = 0;
};

}  // namespace frap::core
