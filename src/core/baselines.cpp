#include "core/baselines.h"

#include <cmath>

#include "util/math.h"

#include "core/stage_delay.h"
#include "util/check.h"

namespace frap::core {

double liu_layland_bound(std::size_t n) {
  FRAP_EXPECTS(n >= 1);
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool liu_layland_schedulable(std::span<const double> task_utilizations) {
  double total = 0;
  for (double u : task_utilizations) {
    FRAP_EXPECTS(u >= 0);
    total += u;
  }
  if (task_utilizations.empty()) return true;
  return total <= liu_layland_bound(task_utilizations.size());
}

bool hyperbolic_schedulable(std::span<const double> task_utilizations) {
  double prod = 1.0;
  for (double u : task_utilizations) {
    FRAP_EXPECTS(u >= 0);
    prod *= u + 1.0;
  }
  return prod <= 2.0;
}

DeadlineSplitAdmissionController::DeadlineSplitAdmissionController(
    sim::Simulator& sim, SyntheticUtilizationTracker& tracker)
    : sim_(sim), tracker_(tracker) {
  scratch_add_.resize(tracker_.num_stages());
  scratch_u_.resize(tracker_.num_stages());
}

AdmissionDecision DeadlineSplitAdmissionController::try_admit(
    const TaskSpec& spec, Time now) {
  ++attempts_;
  FRAP_EXPECTS(spec.valid());
  const std::size_t n = tracker_.num_stages();
  FRAP_EXPECTS(spec.num_stages() == n);

  // Intermediate deadline D_i / N per stage: the stage-local contribution is
  // C_ij / (D_i / N). Retained scratch buffers keep the attempt
  // allocation-free.
  std::span<double> add{scratch_add_};
  const double nd = static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    add[j] = util::safe_div(spec.stages[j].compute * nd, spec.deadline);
  }

  const double cap = uniprocessor_bound();
  std::span<double> u{scratch_u_};
  tracker_.utilizations(u);

  AdmissionDecision d;
  d.arrival = now;
  d.decided_at = sim_.now();
  // Report the worst per-stage margin consumption through the lhs fields so
  // experiments can log comparable quantities (scaled so that 1.0 = at the
  // bound, like the region controllers).
  d.bound = 1.0;
  double worst_before = 0;
  double worst_after = 0;
  bool ok = true;
  for (std::size_t j = 0; j < n; ++j) {
    worst_before = std::max(worst_before, u[j] / cap);
    const double after = u[j] + add[j];
    worst_after = std::max(worst_after, after / cap);
    if (after > cap) ok = false;
  }
  d.lhs_before = worst_before;
  d.lhs_with_task = worst_after;
  d.admitted = ok;
  d.reason = ok ? AdmissionDecision::Reason::kAdmitted
                : AdmissionDecision::Reason::kRegionFull;

  if (ok) {
    ++admitted_;
    tracker_.add(spec.id, add, now + spec.deadline);
  }
  return d;
}

}  // namespace frap::core
