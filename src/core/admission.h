// Admission control against the feasible region (Sec. 4 and Sec. 5).
//
// The base controller implements the paper's admission test: tentatively add
// the arriving task's per-stage contributions to the tracked synthetic
// utilizations and admit iff the result stays inside the feasible region.
// Costs are independent of how many tasks are in the system — the paper's
// headline complexity claim, exercised by bench/micro_admission.
//
// The default path is incremental and allocation-free: the tracker keeps
// f(U_j) per stage plus the running LHS scalar, so a task touching k stages
// is tested against cached_lhs + sum of k deltas in O(k), without snapshot
// vectors and without evaluating untouched stages (docs/incremental_lhs.md).
// try_admit_reference() keeps the original full O(N)-with-snapshots
// evaluation for A/B verification and benchmarking.
//
// Variants layered on top:
//   * approximate admission (Sec. 4.4): the test uses per-stage MEAN
//     computation times instead of the task's actual ones (the actual values
//     still execute), modelling operators who only know averages;
//   * waiting admission (Sec. 5): a rejected task may wait a bounded
//     patience for the region to drain (it retries on every utilization
//     decrease) before being finally rejected;
//   * shedding admission (Sec. 5): when an important task does not fit,
//     less important admitted tasks are shed (their contributions removed
//     and their execution aborted) in increasing order of importance until
//     the newcomer fits;
//   * graph admission (Thm 2): the region is evaluated per task over its
//     DAG's critical path instead of the pipeline sum.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/admission_audit.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "core/task_graph.h"
#include "sim/simulator.h"

namespace frap::core {

struct AdmissionDecision {
  bool admitted = false;
  double lhs_before = 0;     // region LHS before the task
  double lhs_with_task = 0;  // region LHS including the task (tested value)
};

class AdmissionController {
 public:
  AdmissionController(sim::Simulator& sim,
                      SyntheticUtilizationTracker& tracker,
                      FeasibleRegion region);

  // Switches to approximate admission: contributions are computed as
  // mean_compute[j] / D_i instead of C_ij / D_i.
  void set_approximate_means(std::vector<Duration> mean_compute);
  [[nodiscard]] bool approximate() const { return !mean_compute_.empty(); }

  // Tests the task at the current instant; on admission its contribution is
  // committed to the tracker with expiry at `absolute_deadline` (defaults to
  // now + spec.deadline). Incremental fast path: O(stages the task touches),
  // no heap allocation on the test (the commit of an admitted task still
  // creates its tracker record).
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec);
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec,
                                            Time absolute_deadline);

  // The original full evaluation (two snapshot vectors, whole-region LHS
  // twice). Same decisions and same counters as try_admit(); kept so tests
  // and bench/micro_admission can A/B the fast path against it.
  [[nodiscard]] AdmissionDecision try_admit_reference(const TaskSpec& spec);
  [[nodiscard]] AdmissionDecision try_admit_reference(const TaskSpec& spec,
                                                      Time absolute_deadline);

  // Would the task be admitted right now? No state change. Shares the exact
  // LHS computation and the region's admits() predicate with try_admit(), so
  // the two can never disagree — including on boundary ties.
  [[nodiscard]] bool test(const TaskSpec& spec) const;

  const FeasibleRegion& region() const { return region_; }
  SyntheticUtilizationTracker& tracker() { return tracker_; }

  // Optional decision auditing; the audit must outlive the controller.
  void set_audit(AdmissionAudit* audit) { audit_ = audit; }

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t admitted() const { return admitted_; }
  double acceptance_ratio() const {
    return attempts_ == 0
               ? 0.0
               : static_cast<double>(admitted_) /
                     static_cast<double>(attempts_);
  }

 private:
  friend class BatchAdmissionController;

  std::vector<double> contributions_for(const TaskSpec& spec) const;

  // Per-stage contribution of the task (exact C_ij/D_i or mean_j/D_i).
  double contribution(const TaskSpec& spec, std::size_t j,
                      double inv_deadline) const {
    return (mean_compute_.empty() ? spec.stages[j].compute
                                  : mean_compute_[j]) *
           inv_deadline;
  }

  // LHS including the task, computed incrementally from the tracker's
  // cached per-stage f-terms; allocation-free, O(touched stages).
  double incremental_lhs_with(const TaskSpec& spec, double lhs_before) const;

  // Commits an admitted task's contributions via the reusable scratch
  // buffer (no per-call allocation beyond the tracker's task record).
  void commit(const TaskSpec& spec, Time absolute_deadline);

  void record_audit(const TaskSpec& spec, const AdmissionDecision& d);

  sim::Simulator& sim_;
  SyntheticUtilizationTracker& tracker_;
  FeasibleRegion region_;
  std::vector<Duration> mean_compute_;  // empty = exact admission
  std::vector<double> scratch_;         // reused contribution buffer
  AdmissionAudit* audit_ = nullptr;
  std::uint64_t attempts_ = 0;
  std::uint64_t admitted_ = 0;
};

// Decides a burst of arrivals in one pass (replay / bursty workloads that
// release many tasks at the same instant). The tracker state is snapshotted
// once into reusable buffers; every spec is tested in order against the
// running snapshot with pure array arithmetic, and each admission is
// committed to the tracker before the next spec is tested — so the decisions
// are identical to calling inner.try_admit() sequentially, while the hot
// loop avoids per-attempt tracker reads. Counters and the audit of the
// inner controller are updated exactly as for single admissions.
class BatchAdmissionController {
 public:
  explicit BatchAdmissionController(AdmissionController& inner);

  // Decides every spec of the burst at the current instant (each admitted
  // task expires at now + its own deadline). Returns one decision per spec,
  // in order. The returned reference points at an internal buffer that is
  // reused by the next call.
  [[nodiscard]] const std::vector<AdmissionDecision>& try_admit_burst(
      std::span<const TaskSpec> specs);

  std::uint64_t bursts() const { return bursts_; }

 private:
  AdmissionController& inner_;
  std::vector<double> u_;  // working per-stage utilization snapshot
  std::vector<double> f_;  // working per-stage f-terms
  std::vector<AdmissionDecision> decisions_;
  std::uint64_t bursts_ = 0;
};

// Sec. 5 waiting behaviour: an arrival that does not fit immediately is
// parked for up to `patience`; every utilization decrease retries the queue
// in FIFO order. The absolute deadline stays anchored at the original
// arrival time, so waiting consumes the task's own slack.
class WaitingAdmissionController {
 public:
  // Decision callback: admitted flag, the task's original arrival time
  // (its deadline stays anchored there), and the decision time (== the
  // current simulation time; arrival + waiting).
  using DecisionCallback = std::function<void(
      const TaskSpec&, bool admitted, Time arrival, Time decision_time)>;

  WaitingAdmissionController(sim::Simulator& sim, AdmissionController& inner,
                             Duration patience);

  // Call once; the controller hooks the tracker's decrease notifications.
  // Any previously installed on-decrease callback is replaced.
  void attach();

  void set_decision_callback(DecisionCallback cb) { decide_ = std::move(cb); }

  // Submits an arrival at the current time. May decide synchronously (fits
  // now, or patience == 0) or later.
  void submit(const TaskSpec& spec);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t timed_out() const { return timed_out_; }

  // Times a decrease arrived while a retry scan was already running and the
  // scan was re-armed to run again (observability for the cascade case).
  std::uint64_t rearmed_retries() const { return rearmed_retries_; }

 private:
  struct Pending {
    TaskSpec spec;
    Time arrival;
    sim::EventId timeout_event;
  };

  void retry();
  void timeout(std::uint64_t task_id);
  void decide(const Pending& p, bool admitted);

  sim::Simulator& sim_;
  AdmissionController& inner_;
  Duration patience_;
  std::deque<Pending> queue_;
  DecisionCallback decide_;
  std::uint64_t timed_out_ = 0;
  bool retrying_ = false;
  bool rearm_ = false;  // decrease observed mid-retry: scan again
  std::uint64_t rearmed_retries_ = 0;
};

// Sec. 5 load shedding: admitted tasks register with their semantic
// importance; when a more important arrival does not fit, victims are shed
// in increasing importance order until it does. The shed callback must
// abort the victim's execution in the runtime (its contributions are
// removed here).
class SheddingAdmissionController {
 public:
  using ShedCallback = std::function<void(std::uint64_t task_id)>;
  // Returns true when the task may be shed. SOUNDNESS: a task that has
  // already consumed processor time must NOT be shed — its past
  // interference is real while its synthetic-utilization contribution
  // would vanish, which can make later admissions optimistic enough to
  // miss deadlines (observed in tests). Wire this to
  // PipelineRuntime::task_started_executing (negated). Without a filter
  // every victim is fair game (the paper's unrestricted formulation).
  using ShedFilter = std::function<bool(std::uint64_t task_id)>;

  SheddingAdmissionController(AdmissionController& inner, ShedCallback shed);

  void set_shed_filter(ShedFilter filter) { filter_ = std::move(filter); }

  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec);

  std::uint64_t tasks_shed() const { return tasks_shed_; }

 private:
  AdmissionController& inner_;
  ShedCallback shed_;
  ShedFilter filter_;
  // importance -> live task ids at that importance (multimap: FIFO within
  // one importance level).
  std::multimap<double, std::uint64_t> admitted_by_importance_;
  std::uint64_t tasks_shed_ = 0;
};

// Theorem 2: admission for DAG-structured tasks. The region is evaluated
// per task over its graph; contributions are per-resource sums.
class GraphAdmissionController {
 public:
  GraphAdmissionController(sim::Simulator& sim,
                           SyntheticUtilizationTracker& tracker,
                           GraphRegionEvaluator evaluator);

  [[nodiscard]] AdmissionDecision try_admit(const GraphTaskSpec& spec);

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t admitted() const { return admitted_; }

 private:
  sim::Simulator& sim_;
  SyntheticUtilizationTracker& tracker_;
  GraphRegionEvaluator evaluator_;
  std::uint64_t attempts_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace frap::core
