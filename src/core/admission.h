// Admission control against the feasible region (Sec. 4 and Sec. 5).
//
// Every controller here implements the unified frap::Admitter interface
// (src/service/admitter.h) with the one canonical signature
//
//   [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec, Time now)
//
// where `now` is the task's arrival instant: an admitted task's contribution
// is committed with expiry at now + spec.deadline, and the decision records
// the evaluated LHS pair, the bound, and a machine-readable Reason
// (core/admission_decision.h).
//
// The base controller implements the paper's admission test: tentatively add
// the arriving task's per-stage contributions to the tracked synthetic
// utilizations and admit iff the result stays inside the feasible region.
// Costs are independent of how many tasks are in the system — the paper's
// headline complexity claim, exercised by bench/micro_admission.
//
// The default path is incremental and allocation-free: the tracker keeps
// f(U_j) per stage plus the running LHS scalar, so a task touching k stages
// is tested against cached_lhs + sum of k deltas in O(k), without snapshot
// vectors and without evaluating untouched stages (docs/incremental_lhs.md).
// The original full O(N)-with-snapshots evaluation lives in
// frap::testing::ReferenceAdmitter (core/reference_admitter.h), used by the
// A/B identity tests and benchmarks only.
//
// Variants layered on top:
//   * approximate admission (Sec. 4.4): the test uses per-stage MEAN
//     computation times instead of the task's actual ones (the actual values
//     still execute), modelling operators who only know averages;
//   * waiting admission (Sec. 5): a rejected task may wait a bounded
//     patience for the region to drain (it retries on every utilization
//     decrease) before being finally rejected;
//   * shedding admission (Sec. 5): when an important task does not fit,
//     less important admitted tasks are shed (their contributions removed
//     and their execution aborted) in increasing order of importance until
//     the newcomer fits;
//   * graph admission (Thm 2): the region is evaluated per task over its
//     DAG's critical path instead of the pipeline sum.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/admission_audit.h"
#include "core/admission_decision.h"
#include "core/feasible_region.h"
#include "core/long_path_bound.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "core/task_graph.h"
#include "obs/decision_sink.h"
#include "service/admitter.h"
#include "sim/simulator.h"

namespace frap::testing {
class ReferenceAdmitter;  // test-only full-evaluation A/B path
}  // namespace frap::testing

namespace frap::core {

class AdmissionController : public Admitter {
 public:
  AdmissionController(sim::Simulator& sim,
                      SyntheticUtilizationTracker& tracker,
                      FeasibleRegion region);

  // Switches to approximate admission: contributions are computed as
  // mean_compute[j] / D_i instead of C_ij / D_i.
  void set_approximate_means(std::vector<Duration> mean_compute);
  [[nodiscard]] bool approximate() const { return !mean_compute_.empty(); }

  // Quota-capped region view (docs/admission_service.md): every per-stage
  // contribution is multiplied by `scale` before it is tested or committed.
  // With scale = 1/w an unmodified controller enforces the w-slice of the
  // region budget — Jensen's inequality on the convex f makes the per-shard
  // tests globally sound. Must be set while no tasks are live (the tracker's
  // committed contributions are not retroactively rescaled here; the sharded
  // service uses SyntheticUtilizationTracker::rescale_dynamic for that).
  void set_contribution_scale(double scale);
  [[nodiscard]] double contribution_scale() const {
    return contribution_scale_;
  }

  // Canonical admission (Admitter): tests the task arriving at `now`; on
  // admission its contribution is committed with expiry at
  // now + spec.deadline (which must not precede the simulation clock).
  // Incremental fast path: O(stages the task touches), no heap allocation
  // on the test (the commit of an admitted task still creates its tracker
  // record).
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec,
                                            Time now) override;

  // Deprecated shim: forwards the simulator clock as the arrival instant.
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec) {
    return try_admit(spec, sim_.now());
  }

  // try_admit with the ADMIT reason overridden: identical test, commit,
  // audit, and trace, but an admitted decision carries (and is traced with)
  // `admit_reason` instead of kAdmitted. The sharded service's atomic fast
  // path uses this to label its exact-path confirmations kAtomicFastPath /
  // kSlowPathFallback without double-recording into the sink. Rejections
  // keep their computed reason regardless.
  [[nodiscard]] AdmissionDecision try_admit_tagged(
      const TaskSpec& spec, Time now, AdmissionDecision::Reason admit_reason);

  // Would the task be admitted right now? No state change. Shares the exact
  // LHS computation and the region's admits() predicate with try_admit(), so
  // the two can never disagree — including on boundary ties.
  [[nodiscard]] bool test(const TaskSpec& spec) const;

  const FeasibleRegion& region() const { return region_; }
  SyntheticUtilizationTracker& tracker() { return tracker_; }
  Time now() const { return sim_.now(); }

  // Optional decision auditing; the audit must outlive the controller.
  void set_audit(AdmissionAudit* audit) { audit_ = audit; }

  // Optional decision tracing (docs/observability.md); the sink must
  // outlive the controller. Tracing is passive: it NEVER changes a decision
  // (tests/obs_trace_test.cpp proves bit-identical decisions on/off), and a
  // null sink costs one predictable branch on the hot path.
  void set_sink(obs::DecisionSink* sink) { sink_ = sink; }
  [[nodiscard]] obs::DecisionSink* sink() const { return sink_; }

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t admitted() const { return admitted_; }
  double acceptance_ratio() const {
    return attempts_ == 0
               ? 0.0
               : static_cast<double>(admitted_) /
                     static_cast<double>(attempts_);
  }

 private:
  friend class BatchAdmissionController;
  friend class ::frap::testing::ReferenceAdmitter;

  std::vector<double> contributions_for(const TaskSpec& spec) const;

  // Per-stage contribution of the task (exact C_ij/D_i or mean_j/D_i),
  // scaled by the quota view.
  double contribution(const TaskSpec& spec, std::size_t j,
                      double inv_deadline) const {
    return (mean_compute_.empty() ? spec.stages[j].compute
                                  : mean_compute_[j]) *
           inv_deadline * contribution_scale_;
  }

  // LHS including the task, computed incrementally from the tracker's
  // cached per-stage f-terms; allocation-free, O(touched stages). When
  // touched_out is non-null it receives the touched-stage count (c_j > 0),
  // piggybacked on the loop this evaluation already runs so an attached
  // DecisionSink never pays a second pass over the stages.
  double incremental_lhs_with(const TaskSpec& spec, double lhs_before,
                              std::uint16_t* touched_out = nullptr) const;

  // Commits an admitted task's contributions via the reusable scratch
  // buffer (no per-call allocation beyond the tracker's task record).
  void commit(const TaskSpec& spec, Time absolute_deadline);

  void record_audit(const TaskSpec& spec, const AdmissionDecision& d);

  // Stages the task contributes to (c_j > 0) under the active admission
  // mode; only evaluated when a sink is attached.
  std::uint16_t touched_stages(const TaskSpec& spec) const;

  sim::Simulator& sim_;
  SyntheticUtilizationTracker& tracker_;
  FeasibleRegion region_;
  std::vector<Duration> mean_compute_;  // empty = exact admission
  std::vector<double> scratch_;         // reused contribution buffer
  // Reused sparse (stage, value) pair buffers for commit(); sized to
  // num_stages() up front so the hot path never grows them.
  std::vector<std::uint32_t> commit_stages_;
  std::vector<double> commit_values_;
  double contribution_scale_ = 1.0;     // 1/w under a quota plan
  AdmissionAudit* audit_ = nullptr;
  obs::DecisionSink* sink_ = nullptr;
  std::uint64_t attempts_ = 0;
  std::uint64_t admitted_ = 0;
};

// Decides a burst of arrivals in one pass (replay / bursty workloads that
// release many tasks at the same instant). The tracker state is snapshotted
// once into reusable buffers; every spec is tested in order against the
// running snapshot with pure array arithmetic, and each admission is
// committed to the tracker before the next spec is tested — so the decisions
// are identical to calling inner.try_admit() sequentially, while the hot
// loop avoids per-attempt tracker reads. Counters and the audit of the
// inner controller are updated exactly as for single admissions.
class BatchAdmissionController : public Admitter {
 public:
  explicit BatchAdmissionController(AdmissionController& inner);

  // Decides every spec of the burst at the current instant (each admitted
  // task expires at now + its own deadline). Returns one decision per spec,
  // in order. The returned reference points at an internal buffer that is
  // reused by the next call.
  [[nodiscard]] const std::vector<AdmissionDecision>& try_admit_burst(
      std::span<const TaskSpec> specs);

  // Admitter: a burst of one, decided by the inner controller.
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec,
                                            Time now) override {
    return inner_.try_admit(spec, now);
  }

  std::uint64_t bursts() const { return bursts_; }

 private:
  AdmissionController& inner_;
  std::vector<double> u_;  // working per-stage utilization snapshot
  std::vector<double> f_;  // working per-stage f-terms
  // Scratch for the SIMD batch f(U) evaluation (core/stage_delay_batch.h):
  // per-spec contributions, candidate utilizations, and their f-terms.
  std::vector<double> c_;
  std::vector<double> u_with_;
  std::vector<double> f_with_;
  std::vector<AdmissionDecision> decisions_;
  std::uint64_t bursts_ = 0;
};

// Sec. 5 waiting behaviour: an arrival that does not fit immediately is
// parked for up to `patience`; every utilization decrease retries the queue
// in FIFO order. The absolute deadline stays anchored at the original
// arrival time, so waiting consumes the task's own slack.
class WaitingAdmissionController {
 public:
  // Decision callback: receives the full decision. decision.arrival is the
  // task's original arrival (its deadline stays anchored there) and
  // decision.decided_at the simulation instant of the decision (arrival +
  // waiting). A task that waits out its patience is reported with
  // reason == Reason::kTimedOut and the LHS pair of its last failed test.
  using DecisionCallback =
      std::function<void(const TaskSpec&, const AdmissionDecision&)>;

  WaitingAdmissionController(sim::Simulator& sim, AdmissionController& inner,
                             Duration patience);

  // Call once; the controller hooks the tracker's decrease notifications.
  // Any previously installed on-decrease callback is replaced.
  void attach();

  void set_decision_callback(DecisionCallback cb) { decide_ = std::move(cb); }

  // Submits an arrival at the current time. May decide synchronously (fits
  // now, or patience == 0) or later.
  void submit(const TaskSpec& spec);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t timed_out() const { return timed_out_; }

  // Times a decrease arrived while a retry scan was already running and the
  // scan was re-armed to run again (observability for the cascade case).
  std::uint64_t rearmed_retries() const { return rearmed_retries_; }

 private:
  struct Pending {
    TaskSpec spec;
    Time arrival;
    AdmissionDecision last_test;  // most recent failed admission attempt
    sim::EventId timeout_event;
  };

  void retry();
  void timeout(std::uint64_t task_id);
  void decide(const Pending& p, const AdmissionDecision& d);
  AdmissionDecision timed_out_decision(const Pending& p) const;

  sim::Simulator& sim_;
  AdmissionController& inner_;
  Duration patience_;
  std::deque<Pending> queue_;
  DecisionCallback decide_;
  std::uint64_t timed_out_ = 0;
  bool retrying_ = false;
  bool rearm_ = false;  // decrease observed mid-retry: scan again
  std::uint64_t rearmed_retries_ = 0;
};

// Sec. 5 load shedding: admitted tasks register with their semantic
// importance; when a more important arrival does not fit, victims are shed
// in increasing importance order until it does. The shed callback must
// abort the victim's execution in the runtime (its contributions are
// removed here).
class SheddingAdmissionController : public Admitter {
 public:
  using ShedCallback = std::function<void(std::uint64_t task_id)>;
  // Returns true when the task may be shed. SOUNDNESS: a task that has
  // already consumed processor time must NOT be shed — its past
  // interference is real while its synthetic-utilization contribution
  // would vanish, which can make later admissions optimistic enough to
  // miss deadlines (observed in tests). Wire this to
  // PipelineRuntime::task_started_executing (negated). Without a filter
  // every victim is fair game (the paper's unrestricted formulation).
  using ShedFilter = std::function<bool(std::uint64_t task_id)>;

  SheddingAdmissionController(AdmissionController& inner, ShedCallback shed);

  void set_shed_filter(ShedFilter filter) { filter_ = std::move(filter); }

  // Canonical admission (Admitter). A task admitted only after shedding is
  // reported with reason == Reason::kShed.
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec,
                                            Time now) override;

  // Deprecated shim: forwards the simulator clock as the arrival instant.
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec) {
    return try_admit(spec, inner_.now());
  }

  std::uint64_t tasks_shed() const { return tasks_shed_; }

 private:
  AdmissionController& inner_;
  ShedCallback shed_;
  ShedFilter filter_;
  // importance -> live task ids at that importance (multimap: FIFO within
  // one importance level).
  std::multimap<double, std::uint64_t> admitted_by_importance_;
  std::uint64_t tasks_shed_ = 0;
};

// Theorem 2: admission for DAG-structured tasks. The region is evaluated
// per task over its graph; contributions are per-resource sums. Pipeline
// TaskSpecs are admitted through the Admitter interface by converting them
// to their chain-graph form (GraphTaskSpec::from_pipeline).
//
// Two pluggable bounds (docs/dag_bounds.md):
//   * GraphRegionEvaluator — the paper's single-critical-path test;
//     evaluated from a full utilization snapshot (re-walk per attempt).
//   * LongPathEvaluator — the per-path long-path bound. Canonicalized specs
//     (spec.shape set) take the incremental fast path: O(touched resources
//     + cached profile entries) per attempt with an allocation-free sparse
//     commit; specs without a shape fall back to the snapshot walk.
class GraphAdmissionController : public Admitter {
 public:
  GraphAdmissionController(sim::Simulator& sim,
                           SyntheticUtilizationTracker& tracker,
                           GraphRegionEvaluator evaluator);
  GraphAdmissionController(sim::Simulator& sim,
                           SyntheticUtilizationTracker& tracker,
                           LongPathEvaluator evaluator);

  [[nodiscard]] AdmissionDecision try_admit(const GraphTaskSpec& spec,
                                            Time now);
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec,
                                            Time now) override;

  // Deprecated shims: forward the simulator clock as the arrival instant.
  [[nodiscard]] AdmissionDecision try_admit(const GraphTaskSpec& spec) {
    return try_admit(spec, sim_.now());
  }

  [[nodiscard]] bool long_path() const { return long_path_.has_value(); }
  LongPathEvaluator* long_path_evaluator() {
    return long_path_ ? &*long_path_ : nullptr;
  }

  SyntheticUtilizationTracker& tracker() { return tracker_; }

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t admitted() const { return admitted_; }

  // Region evaluations performed (one per try_admit attempt, including
  // waiting-queue retries). The waiting controller's headroom gate is
  // pinned against this counter: a decrease that cannot change the front
  // waiter's test must not add an evaluation.
  std::uint64_t evaluations() const { return evaluations_; }

  // Optional decision tracing; same passivity contract as
  // AdmissionController::set_sink.
  void set_sink(obs::DecisionSink* sink) { sink_ = sink; }

 private:
  // Incremental long-path fast path; requires spec.shape.
  AdmissionDecision try_admit_interned(const GraphTaskSpec& spec, Time now);

  sim::Simulator& sim_;
  SyntheticUtilizationTracker& tracker_;
  std::optional<GraphRegionEvaluator> evaluator_;  // critical-path mode
  std::optional<LongPathEvaluator> long_path_;     // long-path mode
  std::vector<double> scratch_u_;  // reused utilization snapshot buffer
  // Reused sparse (stage, value) buffers for the interned commit; reserved
  // to num_stages() up front so the hot path never grows them.
  std::vector<std::uint32_t> commit_stages_;
  std::vector<double> commit_values_;
  std::uint64_t attempts_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t evaluations_ = 0;
  obs::DecisionSink* sink_ = nullptr;
};

// Sec. 5 waiting behaviour for DAG tasks, with a headroom gate fixing the
// re-walk-on-expire cost: a parked task stores the tracker's cached f-terms
// over its touched resources at its last failed test, and a utilization
// decrease only re-runs the (profile or full-DAG) evaluation when one of
// those f-terms actually changed. f is strictly increasing in U, so equal
// f-terms mean the touched utilizations are unchanged and the failed test
// would repeat verbatim — the gate can never strand an admissible waiter.
// Decreases at resources the front waiter does not touch cost O(touched)
// compares and zero evaluator invocations (gate_skips()).
class WaitingGraphAdmissionController {
 public:
  using DecisionCallback =
      std::function<void(const GraphTaskSpec&, const AdmissionDecision&)>;

  WaitingGraphAdmissionController(sim::Simulator& sim,
                                  GraphAdmissionController& inner,
                                  Duration patience);

  // Call once; the controller hooks the tracker's decrease notifications.
  // Any previously installed on-decrease callback is replaced.
  void attach();

  void set_decision_callback(DecisionCallback cb) { decide_ = std::move(cb); }

  // Submits an arrival at the current time. May decide synchronously (fits
  // now, or patience == 0) or later.
  void submit(const GraphTaskSpec& spec);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t timed_out() const { return timed_out_; }

  // Decrease notifications short-circuited by the headroom gate (no
  // evaluator invocation).
  std::uint64_t gate_skips() const { return gate_skips_; }

  // Decreases that arrived while a retry scan was running (scan re-armed).
  std::uint64_t rearmed_retries() const { return rearmed_retries_; }

 private:
  struct Pending {
    GraphTaskSpec spec;
    Time arrival;
    AdmissionDecision last_test;  // most recent failed admission attempt
    sim::EventId timeout_event;
    std::vector<std::uint32_t> touched;  // resources, ascending
    std::vector<double> gate_f;  // cached f-terms at the last failed test
  };

  void snapshot_gate(Pending& p) const;
  [[nodiscard]] bool gate_changed(const Pending& p) const;
  void on_decrease();
  void retry();
  void timeout(std::uint64_t task_id);
  void decide(const Pending& p, const AdmissionDecision& d);
  AdmissionDecision timed_out_decision(const Pending& p) const;

  sim::Simulator& sim_;
  GraphAdmissionController& inner_;
  SyntheticUtilizationTracker& tracker_;
  Duration patience_;
  std::deque<Pending> queue_;
  DecisionCallback decide_;
  std::uint64_t timed_out_ = 0;
  std::uint64_t gate_skips_ = 0;
  bool retrying_ = false;
  bool rearm_ = false;  // decrease observed mid-retry: scan again
  std::uint64_t rearmed_retries_ = 0;
};

}  // namespace frap::core
