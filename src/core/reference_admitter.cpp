#include "core/reference_admitter.h"

#include <cmath>

namespace frap::testing {

core::AdmissionDecision ReferenceAdmitter::try_admit(
    const core::TaskSpec& spec, Time now) {
  core::AdmissionController& c = inner_;
  ++c.attempts_;
  const auto add = c.contributions_for(spec);
  auto u = c.tracker_.utilizations();

  core::AdmissionDecision d;
  d.arrival = now;
  d.decided_at = c.sim_.now();
  d.bound = c.region_.bound();
  d.lhs_before = c.region_.lhs(u);
  for (std::size_t j = 0; j < u.size(); ++j) u[j] += add[j];
  d.lhs_with_task = c.region_.lhs(u);
  d.admitted = c.region_.admits(d.lhs_with_task);
  d.reason = d.admitted
                 ? core::AdmissionDecision::Reason::kAdmitted
                 : (std::isinf(d.lhs_with_task)
                        ? core::AdmissionDecision::Reason::kStageSaturated
                        : core::AdmissionDecision::Reason::kRegionFull);

  if (d.admitted) {
    ++c.admitted_;
    c.tracker_.add(spec.id, add, now + spec.deadline);
  }
  c.record_audit(spec, d);
  return d;
}

}  // namespace frap::testing
