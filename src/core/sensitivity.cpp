#include "core/sensitivity.h"

#include <algorithm>
#include <numeric>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

std::vector<double> stage_pressures(std::span<const double> utilizations) {
  std::vector<double> p;
  p.reserve(utilizations.size());
  for (double u : utilizations) {
    FRAP_EXPECTS(u >= 0);
    p.push_back(u >= 1.0 ? util::kInf : stage_delay_factor_derivative(u));
  }
  return p;
}

std::vector<std::size_t> upgrade_priority(
    std::span<const double> utilizations) {
  const auto pressures = stage_pressures(utilizations);
  std::vector<std::size_t> order(pressures.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pressures[a] > pressures[b];
                   });
  return order;
}

double lhs_delta_estimate(std::span<const double> utilizations,
                          std::size_t stage, double delta_u) {
  FRAP_EXPECTS(stage < utilizations.size());
  const auto pressures = stage_pressures(utilizations);
  return pressures[stage] * delta_u;
}

}  // namespace frap::core
