// Reservation planning for critical task sets (Sec. 5).
//
// A fraction of each stage's synthetic utilization is set aside for
// critical periodic/aperiodic tasks: U_j^res = sum_i C_ij / D_i over the
// critical tasks that need stage j. Stages that are physically partitioned
// among the tasks (e.g. per-console displays: "we do not add their
// utilizations, but take the largest one") use a max rule instead of a sum.
// The planner certifies the reservation against a feasible region (the
// paper's "first question") and installs the floors into a tracker for
// run-time admission of dynamic load on top (the "second question").
#pragma once

#include <cstddef>
#include <vector>

#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"

namespace frap::core {

class ReservationPlanner {
 public:
  enum class StageRule {
    kSum,  // shared resource: contributions accumulate
    kMax,  // partitioned resource: only the largest single user counts
  };

  // One rule per stage.
  explicit ReservationPlanner(std::vector<StageRule> rules);

  std::size_t num_stages() const { return rules_.size(); }

  // Registers a critical task shape by its per-stage contributions
  // (C_ij / D_i). Periodic streams pass one invocation's contributions;
  // aperiodic criticals pass their worst-case single-instance load.
  void add_contributions(const std::vector<double>& per_stage);

  // Convenience: registers a TaskSpec's contributions.
  void add_task(const TaskSpec& spec);

  // The planned per-stage reservation under the configured rules.
  std::vector<double> reserved() const;

  // Region LHS at the planned reservation.
  [[nodiscard]] double certification_lhs(const FeasibleRegion& region) const;

  // True when the reservation fits the region (all critical tasks meet
  // end-to-end deadlines by Theorem 1/2).
  [[nodiscard]] bool certifies(const FeasibleRegion& region) const;

  // Installs the planned floors into a tracker.
  void apply(SyntheticUtilizationTracker& tracker) const;

 private:
  std::vector<StageRule> rules_;
  std::vector<double> sum_;
  std::vector<double> max_;
};

}  // namespace frap::core
