// The canonical admission-decision record.
//
// Every Admitter implementation (src/service/admitter.h) returns this struct
// from its try_admit(spec, now): the verdict, the machine-readable Reason,
// the evaluated region LHS pair together with the bound it was tested
// against, and the time anchors (arrival = the `now` the caller presented,
// decided_at = the simulation instant the decision was taken; the two differ
// only for waiting admission, where a task may be parked before deciding).
//
// Lives in its own header so the interface in src/service/ and the concrete
// controllers in src/core/ can share it without an include cycle.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace frap::core {

struct AdmissionDecision {
  enum class Reason : std::uint8_t {
    kAdmitted = 0,           // inside the region; contribution committed
    kRegionFull,             // Σ f(U_j) would exceed the bound
    kStageSaturated,         // some U_j would reach 1 (f diverges)
    kShed,                   // admitted after shedding less important tasks
    kTimedOut,               // waited out its patience without fitting
    kQuotaFallback,          // admitted by the sharded service's global path
    kQuotaFallbackRejected,  // rejected even by the global fallback path
    kAtomicFastPath,         // admitted via the lock-free CAS reservation
                             // (confirmed by the exact test at commit)
    kSlowPathFallback,       // admitted by the exact mutex path after the
                             // atomic test was inconclusive (boundary slack)
  };

  bool admitted = false;
  Reason reason = Reason::kRegionFull;
  double lhs_before = 0;     // region LHS before the task
  double lhs_with_task = 0;  // region LHS including the task (tested value)
  double bound = 0;          // the bound lhs_with_task was tested against
  Time arrival = kTimeZero;     // caller-presented arrival instant
  Time decided_at = kTimeZero;  // simulation time of the decision
};

constexpr const char* to_string(AdmissionDecision::Reason r) {
  switch (r) {
    case AdmissionDecision::Reason::kAdmitted:
      return "admitted";
    case AdmissionDecision::Reason::kRegionFull:
      return "region-full";
    case AdmissionDecision::Reason::kStageSaturated:
      return "stage-saturated";
    case AdmissionDecision::Reason::kShed:
      return "shed";
    case AdmissionDecision::Reason::kTimedOut:
      return "timed-out";
    case AdmissionDecision::Reason::kQuotaFallback:
      return "quota-fallback";
    case AdmissionDecision::Reason::kQuotaFallbackRejected:
      return "quota-fallback-rejected";
    case AdmissionDecision::Reason::kAtomicFastPath:
      return "atomic-fast-path";
    case AdmissionDecision::Reason::kSlowPathFallback:
      return "slow-path-fallback";
  }
  return "unknown";
}

}  // namespace frap::core
