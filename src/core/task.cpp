#include "core/task.h"

#include "util/check.h"
#include "util/math.h"

namespace frap::core {

std::vector<sched::Segment> StageDemand::make_segments() const {
  if (segments.empty()) {
    return {sched::Segment{compute, sched::kNoLock}};
  }
  return segments;
}

bool StageDemand::valid() const {
  if (compute < 0) return false;
  if (segments.empty()) return true;
  Duration sum = 0;
  for (const auto& s : segments) {
    if (s.length < 0) return false;
    sum += s.length;
  }
  return util::almost_equal(sum, compute, 1e-9, 1e-12);
}

Duration TaskSpec::total_compute() const {
  Duration total = 0;
  for (const auto& s : stages) total += s.compute;
  return total;
}

std::vector<double> TaskSpec::contributions() const {
  FRAP_EXPECTS(deadline > 0);
  std::vector<double> c;
  c.reserve(stages.size());
  for (const auto& s : stages)
    c.push_back(util::safe_div(s.compute, deadline));
  return c;
}

bool TaskSpec::valid() const {
  if (deadline <= 0) return false;
  if (stages.empty()) return false;
  for (const auto& s : stages) {
    if (!s.valid()) return false;
  }
  return true;
}

}  // namespace frap::core
