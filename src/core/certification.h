// A-priori certification of task-arrival scenarios (Sec. 5).
//
// "Using our analysis ... can both improve schedulability and allow a
//  priori pre-certification of different combinations of periodic and
//  aperiodic task arrival scenarios."
//
// A scenario is a set of critical tasks assumed concurrently active; it is
// certified when the feasible region contains the combined worst-case
// synthetic utilization (per-stage sum/max rules via ReservationPlanner).
// The certifier evaluates an explicit scenario list, or exhaustively every
// subset of a small task catalog, and reports per-scenario verdicts plus
// the largest certified scenario family — the offline artifact that
// replaces the "man-years of testing" the paper describes for the TSCE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/feasible_region.h"
#include "core/reservation.h"

namespace frap::core {

// One critical activity in the catalog.
struct CatalogEntry {
  std::string name;
  // Per-stage synthetic utilization contribution (C_j / D).
  std::vector<double> contributions;
};

struct ScenarioVerdict {
  std::vector<std::size_t> members;  // indices into the catalog
  double lhs = 0;                    // region LHS at the combined load
  bool certified = false;
};

class ScenarioCertifier {
 public:
  // `rules` define how each stage combines contributions (shared stages
  // sum, partitioned stages take the max — the Sec. 5 console rule).
  ScenarioCertifier(FeasibleRegion region,
                    std::vector<ReservationPlanner::StageRule> rules);

  // Adds a catalog entry; contributions must match the region dimension.
  // Returns the entry's index.
  std::size_t add(CatalogEntry entry);

  std::size_t catalog_size() const { return catalog_.size(); }
  const CatalogEntry& entry(std::size_t i) const { return catalog_[i]; }

  // Certifies one scenario (a set of catalog indices; duplicates allowed
  // and counted twice, modelling two concurrent instances).
  ScenarioVerdict certify(const std::vector<std::size_t>& members) const;

  // Certifies EVERY subset of the catalog (requires catalog_size() <= 20).
  // Returned in subset-bitmask order (empty set first).
  std::vector<ScenarioVerdict> certify_all_subsets() const;

  // Convenience over certify_all_subsets(): true iff every subset is
  // certified (then any combination of the catalog may run concurrently).
  [[nodiscard]] bool all_combinations_certified() const;

  // The largest certified subset (by member count; ties broken by smaller
  // bitmask). Useful as a capacity statement.
  ScenarioVerdict largest_certified_subset() const;

 private:
  FeasibleRegion region_;
  std::vector<ReservationPlanner::StageRule> rules_;
  std::vector<CatalogEntry> catalog_;
};

}  // namespace frap::core
