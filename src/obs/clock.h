// The observability clock seam.
//
// Decision-latency measurement needs a real monotonic clock, but library
// code must stay replayable bit-for-bit (frap-lint R5): experiments and
// tests cannot depend on wall time. The seam is this tiny interface — every
// obs component takes a `const Clock&` and calls now_nanos(); production
// wires monotonic_clock() (the ONLY wall-clock read in src/, confined to
// clock.cpp, see docs/static_analysis.md), while tests and simulations wire
// a ManualClock they advance explicitly, so traced runs stay deterministic.
#pragma once

#include <atomic>
#include <cstdint>

namespace frap::obs {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic nanoseconds since an arbitrary epoch. Must never decrease.
  [[nodiscard]] virtual std::uint64_t now_nanos() const = 0;

 protected:
  Clock() = default;
  Clock(const Clock&) = default;
  Clock& operator=(const Clock&) = default;
};

// The process-wide monotonic wall clock (std::chrono::steady_clock).
// Reference stays valid for the whole process lifetime.
const Clock& monotonic_clock();

// Deterministic clock for tests and simulated runs: time moves only when
// the owner advances it. The counter is a relaxed atomic so a test driver
// may advance while traced admission shards read concurrently.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_nanos = 0) : t_(start_nanos) {}

  [[nodiscard]] std::uint64_t now_nanos() const override {
    // frap:contract(order: relaxed; timestamps are advisory metadata on
    // trace events, no happens-before is derived from them)
    return t_.load(std::memory_order_relaxed);
  }

  void advance(std::uint64_t nanos) {
    // frap:contract(order: relaxed RMW; concurrent advances only need
    // atomicity, readers tolerate any interleaving)
    t_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void set(std::uint64_t nanos) {
    // frap:contract(order: relaxed; test drivers set between phases, the
    // value is advisory like now_nanos)
    t_.store(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> t_;
};

}  // namespace frap::obs
