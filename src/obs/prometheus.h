// Prometheus text exposition (version 0.0.4) and JSONL trace rendering.
//
// render_prometheus() turns an Observer MetricsSnapshot into a scrape page:
// every metric carries the `frap_` prefix, histograms follow Prometheus
// semantics (cumulative `_bucket{le=...}` ending in le="+Inf", plus `_sum`
// over finite samples and `_count`), and label values are escaped per the
// exposition format (backslash, double quote, newline). render_jsonl()
// writes the merged decision trace one JSON object per line, suitable for
// jq / pandas ingestion. Both write to an ostream& (frap-lint R5: no stdout
// from library code); the CLI connects them to files or std::cout at the
// edge.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/observer.h"

namespace frap::obs {

// Escapes a label value for the text exposition format: backslash, double
// quote and newline become \\, \" and \n.
std::string escape_label_value(const std::string& v);

// Prometheus sample-value formatting: shortest round-trippable decimal for
// finite doubles, "+Inf" / "-Inf" / "NaN" otherwise.
std::string format_sample_value(double v);

void render_prometheus(const MetricsSnapshot& snap, std::ostream& os);
std::string render_prometheus(const MetricsSnapshot& snap);

// One JSON object per DecisionEvent, newline-delimited, in the order given.
// Non-finite doubles (stage-saturated rejects carry lhs_with_task = +inf)
// are emitted as JSON strings ("+Inf") since bare JSON has no Inf literal.
void render_jsonl(const std::vector<DecisionEvent>& events, std::ostream& os);

}  // namespace frap::obs
