#include "obs/trace_ring.h"

#include <algorithm>

#include "util/check.h"

namespace frap::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {
  FRAP_EXPECTS(capacity >= 1);
}

void TraceRing::unpack_meta(std::uint64_t meta, DecisionEvent& ev) {
  ev.reason = static_cast<core::AdmissionDecision::Reason>(meta & 0xF);
  ev.kind = static_cast<SpanKind>((meta >> 4) & 0x3);
  ev.admitted = ((meta >> 6) & 1) != 0;
  ev.shard = static_cast<std::uint16_t>((meta >> 8) & 0xFFFF);
  ev.touched = static_cast<std::uint16_t>((meta >> 24) & 0xFFFF);
  ev.latency_nanos = meta >> 40;
}

// frap:contract(hotpath)
void TraceRing::push(const DecisionEvent& ev) {
  // frap:contract(order: relaxed ticket draw; slot ownership comes from the
  // claim CAS below, the counter itself has no ordering role)
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];

  // frap:contract(order: relaxed probe; the claim CAS re-validates it)
  std::uint64_t prev = s.seq.load(std::memory_order_relaxed);
  // frap:contract(order: acquire claim pairs with the previous owner's
  // release publish so this lap's stores cannot mix with the last lap's;
  // relaxed failure just abandons the slot)
  if ((prev & 1) != 0 ||
      !s.seq.compare_exchange_strong(prev, prev | 1,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    // A producer from a previous lap still owns the slot: overwrite-by-drop,
    // never block (the loss is counted, docs/observability.md).
    // frap:contract(order: relaxed tally, quiesced-conservation contract)
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // frap:contract(order: relaxed tally, quiesced-conservation contract)
  if (prev != 0) overwritten_.fetch_add(1, std::memory_order_relaxed);

  // Keep the field stores from becoming visible before the odd claim above,
  // mirroring push_serialized(): a reader that sees any new field then sees
  // the claim on its acquire re-check and discards the copy.
  // frap:contract(order: release fence pairs with snapshot()'s acquire
  // fence; payload stores cannot sink above the odd claim)
  std::atomic_thread_fence(std::memory_order_release);

  // frap:contract(order: relaxed payload stores inside the seqlock bracket)
  s.task_id.store(ev.task_id, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.arrival.store(ev.arrival, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.decided_at.store(ev.decided_at, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.lhs_before.store(ev.lhs_before, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.lhs_with_task.store(ev.lhs_with_task, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.bound.store(ev.bound, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.meta.store(pack_meta(ev), std::memory_order_relaxed);

  // frap:contract(order: release even publish pairs with snapshot()'s
  // acquire first load; a reader seeing even k sees the whole payload)
  s.seq.store((ticket + 1) << 1, std::memory_order_release);

  // A large ring streams through memory, so the NEXT slot's line is cold
  // and the claim CAS above would stall a full cache miss. Prefetching it
  // now (write intent) overlaps that miss with the admission work between
  // decisions.
  __builtin_prefetch(&slots_[(ticket + 1) & mask_], 1, 1);
}

std::vector<DecisionEvent> TraceRing::snapshot() const {
  std::vector<DecisionEvent> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    // frap:contract(order: acquire pairs with the writer's release even
    // publish; payload reads below cannot float above this load)
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write

    DecisionEvent ev;
    // frap:contract(order: relaxed payload reads; the seqlock bracket, not
    // the loads themselves, certifies the copy)
    ev.task_id = s.task_id.load(std::memory_order_relaxed);
    // frap:contract(order: relaxed payload read, same bracket)
    ev.arrival = s.arrival.load(std::memory_order_relaxed);
    // frap:contract(order: relaxed payload read, same bracket)
    ev.decided_at = s.decided_at.load(std::memory_order_relaxed);
    // frap:contract(order: relaxed payload read, same bracket)
    ev.lhs_before = s.lhs_before.load(std::memory_order_relaxed);
    // frap:contract(order: relaxed payload read, same bracket)
    ev.lhs_with_task = s.lhs_with_task.load(std::memory_order_relaxed);
    // frap:contract(order: relaxed payload read, same bracket)
    ev.bound = s.bound.load(std::memory_order_relaxed);
    // frap:contract(order: relaxed payload read, same bracket)
    unpack_meta(s.meta.load(std::memory_order_relaxed), ev);

    // Seqlock validation: the fence orders the field loads above before the
    // re-read of seq, so a changed sequence means the copy may mix laps and
    // is discarded.
    // frap:contract(order: acquire fence orders the payload reads before
    // the re-check; pairs with the writers' release fences)
    std::atomic_thread_fence(std::memory_order_acquire);
    // frap:contract(order: relaxed re-check; the fence above ordered it,
    // inequality with s1 is what discards torn copies)
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;
    ev.ticket = (s1 >> 1) - 1;
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const DecisionEvent& a, const DecisionEvent& b) {
              return a.ticket < b.ticket;
            });
  return out;
}

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kDecision:
      return "decision";
    case SpanKind::kFallback:
      return "fallback";
    case SpanKind::kRebalance:
      return "rebalance";
  }
  return "unknown";
}

}  // namespace frap::obs
