#include "obs/trace_ring.h"

#include <algorithm>

#include "util/check.h"

namespace frap::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {
  FRAP_EXPECTS(capacity >= 1);
}

void TraceRing::unpack_meta(std::uint64_t meta, DecisionEvent& ev) {
  ev.reason = static_cast<core::AdmissionDecision::Reason>(meta & 0xF);
  ev.kind = static_cast<SpanKind>((meta >> 4) & 0x3);
  ev.admitted = ((meta >> 6) & 1) != 0;
  ev.shard = static_cast<std::uint16_t>((meta >> 8) & 0xFFFF);
  ev.touched = static_cast<std::uint16_t>((meta >> 24) & 0xFFFF);
  ev.latency_nanos = meta >> 40;
}

void TraceRing::push(const DecisionEvent& ev) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];

  std::uint64_t prev = s.seq.load(std::memory_order_relaxed);
  if ((prev & 1) != 0 ||
      !s.seq.compare_exchange_strong(prev, prev | 1,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    // A producer from a previous lap still owns the slot: overwrite-by-drop,
    // never block (the loss is counted, docs/observability.md).
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (prev != 0) overwritten_.fetch_add(1, std::memory_order_relaxed);

  // Keep the field stores from becoming visible before the odd claim above,
  // mirroring push_serialized(): a reader that sees any new field then sees
  // the claim on its acquire re-check and discards the copy.
  std::atomic_thread_fence(std::memory_order_release);

  s.task_id.store(ev.task_id, std::memory_order_relaxed);
  s.arrival.store(ev.arrival, std::memory_order_relaxed);
  s.decided_at.store(ev.decided_at, std::memory_order_relaxed);
  s.lhs_before.store(ev.lhs_before, std::memory_order_relaxed);
  s.lhs_with_task.store(ev.lhs_with_task, std::memory_order_relaxed);
  s.bound.store(ev.bound, std::memory_order_relaxed);
  s.meta.store(pack_meta(ev), std::memory_order_relaxed);

  s.seq.store((ticket + 1) << 1, std::memory_order_release);

  // A large ring streams through memory, so the NEXT slot's line is cold
  // and the claim CAS above would stall a full cache miss. Prefetching it
  // now (write intent) overlaps that miss with the admission work between
  // decisions.
  __builtin_prefetch(&slots_[(ticket + 1) & mask_], 1, 1);
}

std::vector<DecisionEvent> TraceRing::snapshot() const {
  std::vector<DecisionEvent> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write

    DecisionEvent ev;
    ev.task_id = s.task_id.load(std::memory_order_relaxed);
    ev.arrival = s.arrival.load(std::memory_order_relaxed);
    ev.decided_at = s.decided_at.load(std::memory_order_relaxed);
    ev.lhs_before = s.lhs_before.load(std::memory_order_relaxed);
    ev.lhs_with_task = s.lhs_with_task.load(std::memory_order_relaxed);
    ev.bound = s.bound.load(std::memory_order_relaxed);
    unpack_meta(s.meta.load(std::memory_order_relaxed), ev);

    // Seqlock validation: the fence orders the field loads above before the
    // re-read of seq, so a changed sequence means the copy may mix laps and
    // is discarded.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;
    ev.ticket = (s1 >> 1) - 1;
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const DecisionEvent& a, const DecisionEvent& b) {
              return a.ticket < b.ticket;
            });
  return out;
}

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kDecision:
      return "decision";
    case SpanKind::kFallback:
      return "fallback";
    case SpanKind::kRebalance:
      return "rebalance";
  }
  return "unknown";
}

}  // namespace frap::obs
