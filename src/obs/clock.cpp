#include "obs/clock.h"

#include <chrono>

namespace frap::obs {

namespace {

class MonotonicClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_nanos() const override {
    // The one sanctioned wall-clock read in src/ (frap-lint R5 exempts
    // exactly this file): everything else receives time through the Clock
    // seam so traced runs stay replayable.
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
  }
};

}  // namespace

const Clock& monotonic_clock() {
  static const MonotonicClock clock;
  return clock;
}

}  // namespace frap::obs
