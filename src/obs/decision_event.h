// The compact per-decision trace record (docs/observability.md).
//
// One DecisionEvent is emitted for every admission decision a traced
// Admitter takes, plus span events for the sharded service's rare global
// operations (quota steal / fallback, rebalance). The struct is the PUBLIC
// form; inside the TraceRing it is stored field-for-field in relaxed
// atomics so concurrent snapshot readers never race producers.
#pragma once

#include <cstdint>

#include "core/admission_decision.h"
#include "util/time.h"

namespace frap::obs {

// What the event describes.
enum class SpanKind : std::uint8_t {
  kDecision = 0,  // one try_admit() outcome
  kFallback,      // sharded service global fallback pass (incl. quota steal)
  kRebalance,     // sharded service demand-proportional rebalance
};

const char* to_string(SpanKind kind);

// Shard id carried by events recorded at the service level (fallback /
// rebalance spans) rather than by one shard's sink.
inline constexpr std::uint16_t kServiceShard = 0xFFFF;

// Largest latency a ring slot can carry (24-bit field in the packed meta
// word); larger samples saturate on push. ~16.7 ms, four decades above the
// latency histogram range, so only the raw trace ever sees the cap.
inline constexpr std::uint64_t kLatencySaturationNanos = (1u << 24) - 1;

struct DecisionEvent {
  // Monotone per-ring sequence number, assigned by TraceRing::push().
  std::uint64_t ticket = 0;

  std::uint64_t task_id = 0;
  Time arrival = kTimeZero;     // simulated arrival instant presented
  Time decided_at = kTimeZero;  // simulated instant the decision was taken

  // The evaluated region state: Σ f(U_j) before / including the task, and
  // the bound it was tested against (lhs_with_task is +inf for
  // stage-saturated rejects).
  double lhs_before = 0;
  double lhs_with_task = 0;
  double bound = 0;

  // Wall-clock duration of the decision measured through the obs::Clock
  // seam. 0 when this decision was not latency-sampled (see
  // SinkConfig::latency_sample_period) — sampling keeps the hot path off
  // the clock on most decisions. Ring slots store this in 24 bits, so a
  // value is saturated at ~16.7 ms (kLatencySaturationNanos) on push; the
  // latency histogram (range ~4 us) is unaffected.
  std::uint64_t latency_nanos = 0;

  core::AdmissionDecision::Reason reason =
      core::AdmissionDecision::Reason::kRegionFull;
  SpanKind kind = SpanKind::kDecision;
  bool admitted = false;
  std::uint16_t shard = 0;    // home shard (kServiceShard for spans)
  std::uint16_t touched = 0;  // stages the task actually touches (c_j > 0)
};

}  // namespace frap::obs
