// Lock-free fixed-capacity decision-trace ring (docs/observability.md).
//
// The ring keeps the newest `capacity` DecisionEvents. push() never blocks
// and never allocates: a full ring OVERWRITES the oldest slot and counts the
// lost event (overwritten()); a slot still owned by a stalled writer from a
// previous lap is skipped and the push is counted as dropped(). Every loss
// is observable — conservation holds exactly once producers quiesce:
//
//     snapshot().size() == pushed() - dropped() - overwritten()
//
// Concurrency: multi-producer / snapshot-any-time. Each slot is a seqlock
// (odd sequence = write in progress) claimed by CAS, and the payload fields
// are individually relaxed atomics, so concurrent snapshot readers observe
// either a fully published event or none — no torn reads, no data races
// (the TSan CI leg runs tests/obs_mt_test.cpp against exactly this). On
// x86-64 the relaxed stores compile to plain MOVs; a push() costs one
// uncontended fetch_add plus one CAS, and the lock-serialized
// push_serialized() path costs no locked instructions at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/decision_event.h"

namespace frap::obs {

class TraceRing {
 public:
  // Capacity is rounded UP to the next power of two (min 2).
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // Records the event (ev.ticket is assigned here). Never blocks: a busy
  // slot drops the event, a full ring overwrites the oldest — both counted.
  void push(const DecisionEvent& ev);

  // Single-writer fast path: same effect as push() but with no locked
  // read-modify-write instructions (the fetch_add and the CAS claim are what
  // an uncontended push() actually pays for). Requires ALL pushes to this
  // ring — push() or push_serialized() — to be serialized by one external
  // lock (the DecisionSink contract); snapshot() may still run concurrently
  // from any thread. Never drops: a full ring overwrites the oldest.
  // Defined inline below so the per-decision sink path flattens into direct
  // slot stores.
  void push_serialized(const DecisionEvent& ev);

  // Everything non-double squeezed into one word so a Slot is exactly one
  // cache line: reason:4 | kind:2 | admitted:1 | spare:1 | shard:16 |
  // touched:16 | latency:24 (saturating, kLatencySaturationNanos).
  // Exposed for the inline push_serialized() only.
  static std::uint64_t pack_meta(const DecisionEvent& ev) {
    const std::uint64_t lat = ev.latency_nanos < kLatencySaturationNanos
                                  ? ev.latency_nanos
                                  : kLatencySaturationNanos;
    return (static_cast<std::uint64_t>(ev.reason) & 0xF) |
           ((static_cast<std::uint64_t>(ev.kind) & 0x3) << 4) |
           (static_cast<std::uint64_t>(ev.admitted ? 1 : 0) << 6) |
           (static_cast<std::uint64_t>(ev.shard) << 8) |
           (static_cast<std::uint64_t>(ev.touched) << 24) |
           (lat << 40);
  }

  // Total push() calls ever.
  std::uint64_t pushed() const {
    // frap:contract(order: relaxed; conservation is only asserted once
    // producers quiesce, a mid-flight read may lag)
    return head_.load(std::memory_order_relaxed);
  }
  // Pushes skipped because the claimed slot was still mid-write (a full lap
  // happened around a stalled producer).
  std::uint64_t dropped() const {
    // frap:contract(order: relaxed; same quiesced-conservation contract as
    // pushed())
    return dropped_.load(std::memory_order_relaxed);
  }
  // Previously published events destroyed by wrap-around overwrite.
  std::uint64_t overwritten() const {
    // frap:contract(order: relaxed; same quiesced-conservation contract as
    // pushed())
    return overwritten_.load(std::memory_order_relaxed);
  }

  // Copies out every consistently published event, oldest ticket first.
  // Safe to call at any time from any thread; events overwritten mid-copy
  // are simply absent from the result.
  std::vector<DecisionEvent> snapshot() const;

 private:
  // Exactly one 64-byte cache line: a push dirties (and a snapshot reads)
  // a single line per event, which matters because a large ring streams
  // through memory and every line is cold.
  struct alignas(64) Slot {
    // 0 = never written; odd = write in progress; even nonzero k publishes
    // the event with ticket (k >> 1) - 1.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> task_id{0};
    std::atomic<double> arrival{0};
    std::atomic<double> decided_at{0};
    std::atomic<double> lhs_before{0};
    std::atomic<double> lhs_with_task{0};
    std::atomic<double> bound{0};
    // See pack_meta(): reason/kind/admitted/shard/touched/latency.
    std::atomic<std::uint64_t> meta{0};
  };
  static_assert(sizeof(Slot) == 64);

  static void unpack_meta(std::uint64_t meta, DecisionEvent& ev);

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> overwritten_{0};
};

// frap:contract(hotpath)
inline void TraceRing::push_serialized(const DecisionEvent& ev) {
  // frap:contract(order: relaxed; the external serialization lock makes
  // this writer the only head_ mutator, readers only need atomicity)
  const std::uint64_t ticket = head_.load(std::memory_order_relaxed);
  // frap:contract(order: relaxed unlocked increment under the external
  // lock; see pushed() for the reader side)
  head_.store(ticket + 1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];

  // frap:contract(order: relaxed; only this serialized writer mutates seq,
  // so its own last store is the only value this can observe)
  const std::uint64_t prev = s.seq.load(std::memory_order_relaxed);
  if (prev != 0) {
    // Load+store, not fetch_add: once the ring has wrapped EVERY push takes
    // this branch, and a locked read-modify-write here would hand back most
    // of what skipping the claim CAS saved. Serialized pushes make the
    // unlocked increment safe; concurrent readers still see an atomic value.
    // frap:contract(order: relaxed load+store counter under the external
    // lock, same quiesced-conservation contract as overwritten())
    overwritten_.store(overwritten_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  }

  // Standard seqlock write: mark the slot odd BEFORE touching the payload so
  // a concurrent snapshot can never validate a half-written event. The
  // release fence keeps the field stores from sinking above the odd mark.
  // frap:contract(order: relaxed odd mark; ordered by the release fence
  // below, not by the store itself)
  s.seq.store((ticket << 1) | 1, std::memory_order_relaxed);
  // frap:contract(order: release fence pairs with snapshot()'s acquire
  // fence; payload stores cannot sink above the odd mark)
  std::atomic_thread_fence(std::memory_order_release);

  // frap:contract(order: relaxed payload stores inside the seqlock bracket;
  // the fences and the even publish order them for readers)
  s.task_id.store(ev.task_id, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.arrival.store(ev.arrival, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.decided_at.store(ev.decided_at, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.lhs_before.store(ev.lhs_before, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.lhs_with_task.store(ev.lhs_with_task, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.bound.store(ev.bound, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket)
  s.meta.store(pack_meta(ev), std::memory_order_relaxed);

  // frap:contract(order: release even publish pairs with snapshot()'s
  // acquire first load; a reader seeing even k sees the whole payload)
  s.seq.store((ticket + 1) << 1, std::memory_order_release);

  // A large ring streams through memory, so the NEXT slot's line is cold
  // and the seq load above would stall a full cache miss. Prefetching it
  // now (write intent) overlaps that miss with the admission work between
  // decisions.
  __builtin_prefetch(&slots_[(ticket + 1) & mask_], 1, 1);
}

}  // namespace frap::obs
