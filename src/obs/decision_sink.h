// Per-shard decision sink: ring + latency/headroom histograms + counters.
//
// One DecisionSink belongs to one Admitter (or one shard of the sharded
// service) and is serialized by whatever serializes that admitter — the
// shard mutex, or plain single-threaded use. Only the embedded TraceRing is
// lock-free; the histograms and per-reason counters are deliberately plain
// so the hot path stays a handful of increments. Cross-thread readers must
// go through Observer::snapshot() (which takes the owning locks), never
// poke a live sink directly.
//
// Latency sampling: reading even a vDSO monotonic clock costs ~20-25 ns,
// which would dominate the ~30 ns admission fast path if paid per decision.
// begin_decision() therefore stamps only every latency_sample_period-th
// decision; unsampled decisions carry latency_nanos == 0 in the trace and
// are absent from the latency histogram (docs/observability.md).
#pragma once

#include <cmath>
#include <cstdint>

#include "core/admission_decision.h"
#include "metrics/histogram.h"
#include "obs/clock.h"
#include "obs/trace_ring.h"

namespace frap::obs {

// Number of core::AdmissionDecision::Reason values (indexable 0..N-1).
// NOTE: the trace ring packs the reason into 4 bits (obs/trace_ring.h), so
// this may grow to at most 16 before the packing needs another word.
inline constexpr std::size_t kReasonCount = 9;

struct SinkConfig {
  std::size_t ring_capacity = std::size_t{1} << 16;

  // Stamp the clock on every Nth decision; 0 disables latency sampling
  // entirely (no clock reads on the hot path at all).
  std::uint32_t latency_sample_period = 64;

  // Decision-latency histogram range, nanoseconds.
  double latency_lo_nanos = 0.0;
  double latency_hi_nanos = 4096.0;
  std::size_t latency_buckets = 64;

  // LHS-headroom histogram range: bound minus the post-decision LHS.
  double headroom_lo = 0.0;
  double headroom_hi = 1.0;
  std::size_t headroom_buckets = 50;
};

struct SinkSnapshot {
  std::uint16_t shard = 0;
  // Decisions by Reason (index == static_cast<size_t>(reason)); spans are
  // NOT counted here — they live in span_events.
  std::uint64_t decisions_by_reason[kReasonCount] = {};
  std::uint64_t span_events = 0;
  // Ring conservation counters.
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t overwritten = 0;
  metrics::Histogram latency_nanos;
  metrics::Histogram headroom;
};

class DecisionSink {
 public:
  DecisionSink(std::uint16_t shard, const SinkConfig& cfg, const Clock& clock);

  DecisionSink(const DecisionSink&) = delete;
  DecisionSink& operator=(const DecisionSink&) = delete;

  std::uint16_t shard() const { return shard_; }

  // Call at the top of try_admit. Returns the clock stamp when this
  // decision is latency-sampled, 0 otherwise (pass the value to record()).
  // Inline (with record below) so the per-decision cost flattens into a few
  // increments plus direct slot stores inside the caller.
  // frap:contract(hotpath)
  [[nodiscard]] std::uint64_t begin_decision() {
    if (sample_period_ == 0) return 0;
    if (--sample_countdown_ != 0) return 0;
    sample_countdown_ = sample_period_;
    return clock_->now_nanos();
  }

  // Record one admission decision. t0_nanos is begin_decision()'s return.
  // frap:contract(hotpath)
  void record(const core::AdmissionDecision& d, std::uint64_t task_id,
              std::uint16_t touched, std::uint64_t t0_nanos) {
    ++decisions_by_reason_[static_cast<std::size_t>(d.reason)];

    std::uint64_t latency = 0;
    if (t0_nanos != 0) {
      const std::uint64_t t1 = clock_->now_nanos();
      latency = t1 >= t0_nanos ? t1 - t0_nanos : 0;
      latency_nanos_.add_finite(static_cast<double>(latency));
    }

    // Headroom of the state the decision LEFT behind: an admit moved the LHS
    // to lhs_with_task, a reject left it at lhs_before. Stage-saturated
    // rejects carry lhs_with_task == +inf, which would otherwise clamp into
    // the bottom bucket and masquerade as zero headroom.
    // bound is finite by FeasibleRegion's invariants, so the difference of
    // two finite values is finite and the histogram's classification
    // branches can be skipped.
    const double post_lhs = d.admitted ? d.lhs_with_task : d.lhs_before;
    if (std::isfinite(post_lhs)) headroom_.add_finite(d.bound - post_lhs);

    push_event(SpanKind::kDecision, d, task_id, touched, latency);
  }

  // Record a service-level span (fallback / rebalance). Spans go into the
  // ring and the span counter but not the per-reason decision counters —
  // the underlying decision is already counted by its home shard.
  void record_span(SpanKind kind, const core::AdmissionDecision& d,
                   std::uint64_t task_id, std::uint16_t touched);

  const TraceRing& ring() const { return ring_; }

  // Copies counters + histograms. Caller must hold the owning lock.
  SinkSnapshot snapshot() const;

 private:
  // frap:contract(hotpath)
  void push_event(SpanKind kind, const core::AdmissionDecision& d,
                  std::uint64_t task_id, std::uint16_t touched,
                  std::uint64_t latency_nanos) {
    DecisionEvent ev;
    ev.task_id = task_id;
    ev.arrival = d.arrival;
    ev.decided_at = d.decided_at;
    ev.lhs_before = d.lhs_before;
    ev.lhs_with_task = d.lhs_with_task;
    ev.bound = d.bound;
    ev.latency_nanos = latency_nanos;
    ev.reason = d.reason;
    ev.kind = kind;
    ev.admitted = d.admitted;
    ev.shard = shard_;
    ev.touched = touched;
    // The sink contract serializes all pushes under the owning lock, so the
    // ring's no-locked-instruction path applies; inlined end to end, the
    // compiler forwards these fields straight into the slot stores.
    ring_.push_serialized(ev);
  }

  std::uint16_t shard_;
  const Clock* clock_;
  std::uint32_t sample_period_;
  // Countdown to the next latency-sampled decision: a decrement + branch
  // instead of a modulo, which would cost a hardware divide per decision.
  std::uint32_t sample_countdown_;
  std::uint64_t decisions_by_reason_[kReasonCount] = {};
  std::uint64_t span_events_ = 0;
  metrics::Histogram latency_nanos_;
  metrics::Histogram headroom_;
  TraceRing ring_;
};

}  // namespace frap::obs
