#include "obs/observer.h"

#include <algorithm>
#include <tuple>

#include "util/check.h"

namespace frap::obs {

Observer::Observer(std::size_t num_sinks, const SinkConfig& cfg,
                   const Clock* clock, std::size_t num_stages,
                   const StageConfig& stage_cfg)
    : clock_(clock != nullptr ? clock : &monotonic_clock()) {
  FRAP_EXPECTS(num_sinks >= 1);
  FRAP_EXPECTS(num_sinks < kServiceShard);
  sinks_.reserve(num_sinks);
  for (std::size_t k = 0; k < num_sinks; ++k) {
    sinks_.push_back(std::make_unique<DecisionSink>(
        static_cast<std::uint16_t>(k), cfg, *clock_));
  }
  service_sink_ = std::make_unique<DecisionSink>(kServiceShard, cfg, *clock_);
  if (num_stages > 0) {
    stage_observer_ = std::make_unique<StageObserver>(num_stages, stage_cfg);
  }
}

MetricsSnapshot Observer::snapshot() const {
  MetricsSnapshot snap;
  snap.sinks.reserve(sinks_.size() + 1);
  for (const auto& s : sinks_) snap.sinks.push_back(s->snapshot());
  snap.sinks.push_back(service_sink_->snapshot());
  if (stage_observer_ != nullptr) snap.stages = stage_observer_->snapshot();
  return snap;
}

std::vector<DecisionEvent> Observer::trace() const {
  std::vector<DecisionEvent> all;
  for (const auto& s : sinks_) {
    const auto events = s->ring().snapshot();
    all.insert(all.end(), events.begin(), events.end());
  }
  const auto spans = service_sink_->ring().snapshot();
  all.insert(all.end(), spans.begin(), spans.end());
  std::sort(all.begin(), all.end(),
            [](const DecisionEvent& a, const DecisionEvent& b) {
              return std::tie(a.decided_at, a.shard, a.ticket) <
                     std::tie(b.decided_at, b.shard, b.ticket);
            });
  return all;
}

}  // namespace frap::obs
