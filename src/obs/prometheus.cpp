#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace frap::obs {

namespace {

std::string shard_label(std::uint16_t shard) {
  if (shard == kServiceShard) return "service";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u", static_cast<unsigned>(shard));
  return buf;
}

std::string u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// `labels` is a pre-rendered label body like `shard="0"` (may be empty).
void sample(std::ostream& os, const char* name, const std::string& labels,
            const std::string& value) {
  os << name;
  if (!labels.empty()) os << '{' << labels << '}';
  os << ' ' << value << '\n';
}

void header(std::ostream& os, const char* name, const char* type,
            const char* help) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

// Emits a full Prometheus histogram family member: cumulative buckets with
// le="+Inf", then _sum (finite-sample sum) and _count.
void histogram_samples(std::ostream& os, const std::string& name,
                       const std::string& labels,
                       const metrics::Histogram& h) {
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    cum += h.bucket(i);
    std::string le_labels = labels.empty() ? "" : labels + ",";
    le_labels += "le=\"" + format_sample_value(h.bucket_hi(i)) + "\"";
    sample(os, (name + "_bucket").c_str(), le_labels, u64(cum));
  }
  std::string inf_labels = labels.empty() ? "" : labels + ",";
  inf_labels += "le=\"+Inf\"";
  sample(os, (name + "_bucket").c_str(), inf_labels, u64(h.total()));
  sample(os, (name + "_sum").c_str(), labels, format_sample_value(h.sum()));
  sample(os, (name + "_count").c_str(), labels, u64(h.total()));
}

}  // namespace

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string format_sample_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void render_prometheus(const MetricsSnapshot& snap, std::ostream& os) {
  header(os, "frap_decisions_total", "counter",
         "Admission decisions by shard and reason");
  for (const SinkSnapshot& s : snap.sinks) {
    const std::string sh = shard_label(s.shard);
    for (std::size_t r = 0; r < kReasonCount; ++r) {
      if (s.decisions_by_reason[r] == 0) continue;
      const auto reason = static_cast<core::AdmissionDecision::Reason>(r);
      sample(os, "frap_decisions_total",
             "shard=\"" + sh + "\",reason=\"" +
                 escape_label_value(core::to_string(reason)) + "\"",
             u64(s.decisions_by_reason[r]));
    }
  }

  header(os, "frap_span_events_total", "counter",
         "Service-level span events (fallback, rebalance)");
  for (const SinkSnapshot& s : snap.sinks) {
    sample(os, "frap_span_events_total",
           "shard=\"" + shard_label(s.shard) + "\"", u64(s.span_events));
  }

  header(os, "frap_trace_pushed_total", "counter",
         "Events offered to the trace ring");
  for (const SinkSnapshot& s : snap.sinks) {
    sample(os, "frap_trace_pushed_total",
           "shard=\"" + shard_label(s.shard) + "\"", u64(s.pushed));
  }
  header(os, "frap_trace_dropped_total", "counter",
         "Events dropped because the claimed slot was mid-write");
  for (const SinkSnapshot& s : snap.sinks) {
    sample(os, "frap_trace_dropped_total",
           "shard=\"" + shard_label(s.shard) + "\"", u64(s.dropped));
  }
  header(os, "frap_trace_overwritten_total", "counter",
         "Published events destroyed by ring wrap-around");
  for (const SinkSnapshot& s : snap.sinks) {
    sample(os, "frap_trace_overwritten_total",
           "shard=\"" + shard_label(s.shard) + "\"", u64(s.overwritten));
  }

  header(os, "frap_decision_latency_nanos", "histogram",
         "Sampled wall-clock decision latency in nanoseconds");
  for (const SinkSnapshot& s : snap.sinks) {
    histogram_samples(os, "frap_decision_latency_nanos",
                      "shard=\"" + shard_label(s.shard) + "\"",
                      s.latency_nanos);
  }

  header(os, "frap_lhs_headroom", "histogram",
         "Region bound minus post-decision LHS");
  for (const SinkSnapshot& s : snap.sinks) {
    histogram_samples(os, "frap_lhs_headroom",
                      "shard=\"" + shard_label(s.shard) + "\"", s.headroom);
  }

  header(os, "frap_histogram_nan_rejected_total", "counter",
         "NaN samples rejected by metric histograms");
  for (const SinkSnapshot& s : snap.sinks) {
    const std::string sh = shard_label(s.shard);
    sample(os, "frap_histogram_nan_rejected_total",
           "shard=\"" + sh + "\",metric=\"decision_latency_nanos\"",
           u64(s.latency_nanos.nan_rejected()));
    sample(os, "frap_histogram_nan_rejected_total",
           "shard=\"" + sh + "\",metric=\"lhs_headroom\"",
           u64(s.headroom.nan_rejected()));
  }

  if (snap.stages.empty()) return;

  header(os, "frap_stage_enqueued_total", "counter",
         "Tasks that entered the stage queue");
  for (const StageSnapshot& st : snap.stages) {
    sample(os, "frap_stage_enqueued_total",
           "stage=\"" + u64(st.stage) + "\"", u64(st.enqueued));
  }
  header(os, "frap_stage_departed_total", "counter",
         "Tasks that completed the stage");
  for (const StageSnapshot& st : snap.stages) {
    sample(os, "frap_stage_departed_total",
           "stage=\"" + u64(st.stage) + "\"", u64(st.departed));
  }
  header(os, "frap_stage_queue_depth", "gauge",
         "Tasks currently queued or in service at the stage");
  for (const StageSnapshot& st : snap.stages) {
    sample(os, "frap_stage_queue_depth", "stage=\"" + u64(st.stage) + "\"",
           u64(st.queue_depth));
  }
  header(os, "frap_stage_peak_queue_depth", "gauge",
         "Peak concurrent tasks observed at the stage");
  for (const StageSnapshot& st : snap.stages) {
    sample(os, "frap_stage_peak_queue_depth",
           "stage=\"" + u64(st.stage) + "\"", u64(st.peak_depth));
  }
  header(os, "frap_stage_sojourn_seconds", "histogram",
         "Simulated stage sojourn time (enqueue to departure)");
  for (const StageSnapshot& st : snap.stages) {
    histogram_samples(os, "frap_stage_sojourn_seconds",
                      "stage=\"" + u64(st.stage) + "\"", st.sojourn);
  }
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  render_prometheus(snap, os);
  return os.str();
}

namespace {

// JSON has no Inf/NaN literal; non-finite doubles become quoted strings.
std::string json_double(double v) {
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return "\"" + format_sample_value(v) + "\"";
}

}  // namespace

void render_jsonl(const std::vector<DecisionEvent>& events,
                  std::ostream& os) {
  for (const DecisionEvent& ev : events) {
    os << "{\"ticket\":" << u64(ev.ticket)                       //
       << ",\"kind\":\"" << to_string(ev.kind) << '"'            //
       << ",\"shard\":" << u64(ev.shard)                         //
       << ",\"task_id\":" << u64(ev.task_id)                     //
       << ",\"arrival\":" << json_double(ev.arrival)             //
       << ",\"decided_at\":" << json_double(ev.decided_at)       //
       << ",\"admitted\":" << (ev.admitted ? "true" : "false")   //
       << ",\"reason\":\"" << core::to_string(ev.reason) << '"'  //
       << ",\"lhs_before\":" << json_double(ev.lhs_before)       //
       << ",\"lhs_with_task\":" << json_double(ev.lhs_with_task)  //
       << ",\"bound\":" << json_double(ev.bound)                 //
       << ",\"touched\":" << u64(ev.touched)                     //
       << ",\"latency_nanos\":" << u64(ev.latency_nanos) << "}\n";
  }
}

}  // namespace frap::obs
