#include "obs/stage_observer.h"

#include "util/check.h"

namespace frap::obs {

StageObserver::StageObserver(std::size_t num_stages, const StageConfig& cfg) {
  FRAP_EXPECTS(num_stages >= 1);
  stages_.reserve(num_stages);
  for (std::size_t j = 0; j < num_stages; ++j) stages_.emplace_back(cfg);
}

void StageObserver::on_enqueue(std::size_t stage, Time now) {
  FRAP_EXPECTS(stage < stages_.size());
  (void)now;
  Stage& s = stages_[stage];
  ++s.enqueued;
  const std::uint64_t depth = s.enqueued - s.departed;
  if (depth > s.peak_depth) s.peak_depth = depth;
}

void StageObserver::on_depart(std::size_t stage, Time entered, Time now) {
  FRAP_EXPECTS(stage < stages_.size());
  Stage& s = stages_[stage];
  ++s.departed;
  s.sojourn.add(now - entered);
}

std::vector<StageSnapshot> StageObserver::snapshot() const {
  std::vector<StageSnapshot> out;
  out.reserve(stages_.size());
  for (std::size_t j = 0; j < stages_.size(); ++j) {
    const Stage& s = stages_[j];
    out.push_back(StageSnapshot{j, s.enqueued, s.departed,
                                s.enqueued - s.departed, s.peak_depth,
                                s.sojourn});
  }
  return out;
}

}  // namespace frap::obs
