// Per-stage pipeline gauges: queue depth (current / peak), departures, and
// a sojourn-time histogram (enqueue -> departure, in simulated seconds).
//
// Fed by PipelineRuntime / DagRuntime, which are single-threaded event
// simulators, so the observer is deliberately plain data — no atomics, no
// locks. Times are SIMULATED seconds (frap::Time), not wall clock: stage
// sojourn is a property of the modelled pipeline, not of the host machine.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/histogram.h"
#include "util/time.h"

namespace frap::obs {

struct StageConfig {
  // Sojourn histogram range, simulated seconds.
  double sojourn_lo = 0.0;
  double sojourn_hi = 1.0;
  std::size_t sojourn_buckets = 50;
};

struct StageSnapshot {
  std::size_t stage = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t departed = 0;
  std::uint64_t queue_depth = 0;  // enqueued - departed
  std::uint64_t peak_depth = 0;
  metrics::Histogram sojourn;
};

class StageObserver {
 public:
  StageObserver(std::size_t num_stages, const StageConfig& cfg = {});

  StageObserver(const StageObserver&) = delete;
  StageObserver& operator=(const StageObserver&) = delete;

  std::size_t num_stages() const { return stages_.size(); }

  // A task entered stage j's queue (or began service) at simulated `now`.
  void on_enqueue(std::size_t stage, Time now);

  // The task that entered at `entered` left stage j at simulated `now`.
  void on_depart(std::size_t stage, Time entered, Time now);

  std::vector<StageSnapshot> snapshot() const;

 private:
  struct Stage {
    std::uint64_t enqueued = 0;
    std::uint64_t departed = 0;
    std::uint64_t peak_depth = 0;
    metrics::Histogram sojourn;
    explicit Stage(const StageConfig& cfg)
        : sojourn(cfg.sojourn_lo, cfg.sojourn_hi, cfg.sojourn_buckets) {}
  };

  std::vector<Stage> stages_;
};

}  // namespace frap::obs
