// Observer: the ownership umbrella for one traced universe.
//
// Owns N per-shard DecisionSinks (N = 1 for a plain AdmissionController),
// one extra service-level sink for the sharded service's global span events
// (fallback / rebalance), and an optional StageObserver for pipeline-stage
// gauges. Wire-up pattern:
//
//     obs::Observer observer(1, cfg);                // or num_shards
//     controller.set_sink(&observer.sink(0));
//     runtime.set_stage_observer(&observer.stage_observer());
//
// Snapshot / trace methods here assume the producers are quiescent or that
// the caller holds the producers' locks (ShardedAdmissionService wraps this
// in obs_snapshot(), which locks every shard). Sinks are stable in memory
// for the Observer's lifetime (held by unique_ptr), so raw sink pointers
// handed to admitters never dangle before the Observer dies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/decision_sink.h"
#include "obs/stage_observer.h"

namespace frap::obs {

struct MetricsSnapshot {
  // Per-shard sinks first, service-level sink (shard == kServiceShard)
  // last.
  std::vector<SinkSnapshot> sinks;
  std::vector<StageSnapshot> stages;
};

class Observer {
 public:
  // `clock == nullptr` wires the real monotonic clock; tests pass a
  // ManualClock. `num_stages == 0` skips the stage observer.
  explicit Observer(std::size_t num_sinks, const SinkConfig& cfg = {},
                    const Clock* clock = nullptr, std::size_t num_stages = 0,
                    const StageConfig& stage_cfg = {});

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  std::size_t num_sinks() const { return sinks_.size(); }

  DecisionSink& sink(std::size_t k) { return *sinks_.at(k); }
  const DecisionSink& sink(std::size_t k) const { return *sinks_.at(k); }

  // The service-level sink for global span events (shard id
  // kServiceShard). Always present.
  DecisionSink& service_sink() { return *service_sink_; }
  const DecisionSink& service_sink() const { return *service_sink_; }

  bool has_stage_observer() const { return stage_observer_ != nullptr; }
  StageObserver& stage_observer() { return *stage_observer_; }

  // The Clock seam every sink stamps latencies through ("time_source", not
  // "clock": frap-lint R5 reserves the bare `clock(` spelling for the libc
  // wall-clock it bans).
  const Clock& time_source() const { return *clock_; }

  // Aggregates every sink (+ stages) into one copyable snapshot.
  MetricsSnapshot snapshot() const;

  // All ring events across every sink, merged and ordered by
  // (decided_at, shard, ticket) so interleaved shard traces read in
  // simulated-time order.
  std::vector<DecisionEvent> trace() const;

 private:
  const Clock* clock_;
  std::vector<std::unique_ptr<DecisionSink>> sinks_;
  std::unique_ptr<DecisionSink> service_sink_;
  std::unique_ptr<StageObserver> stage_observer_;
};

}  // namespace frap::obs
