#include "obs/decision_sink.h"

#include <cmath>

namespace frap::obs {

DecisionSink::DecisionSink(std::uint16_t shard, const SinkConfig& cfg,
                           const Clock& clock)
    : shard_(shard),
      clock_(&clock),
      sample_period_(cfg.latency_sample_period),
      sample_countdown_(cfg.latency_sample_period),
      latency_nanos_(cfg.latency_lo_nanos, cfg.latency_hi_nanos,
                     cfg.latency_buckets),
      headroom_(cfg.headroom_lo, cfg.headroom_hi, cfg.headroom_buckets),
      ring_(cfg.ring_capacity) {}

void DecisionSink::record_span(SpanKind kind, const core::AdmissionDecision& d,
                               std::uint64_t task_id, std::uint16_t touched) {
  ++span_events_;
  push_event(kind, d, task_id, touched, 0);
}

SinkSnapshot DecisionSink::snapshot() const {
  SinkSnapshot snap{shard_,
                    {},
                    span_events_,
                    ring_.pushed(),
                    ring_.dropped(),
                    ring_.overwritten(),
                    latency_nanos_,
                    headroom_};
  for (std::size_t i = 0; i < kReasonCount; ++i) {
    snap.decisions_by_reason[i] = decisions_by_reason_[i];
  }
  return snap;
}

}  // namespace frap::obs
