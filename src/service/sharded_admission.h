// K-way sharded concurrent admission service.
//
// Partitions the region budget Σ_j f(U_j) ≤ B across K shards by quota
// WEIGHTS (service/quota.h): shard k holds weight w_k, Σ w_k = 1, and runs
// an unmodified single-threaded core::AdmissionController whose per-task
// contributions are scaled by 1/w_k but tested against the full bound B.
// Convexity of f (Jensen) makes every purely local admission globally
// sound, so the hot path takes exactly one uncontended shard mutex and
// never synchronizes across shards (docs/admission_service.md derives the
// invariant and its limits).
//
// Four paths:
//   * ATOMIC FAST PATH (enable_atomic_fast_path, default on) — each shard
//     additionally keeps its region LHS quantized into a 64-bit fixed-point
//     atomic (service/atomic_admission.h). Certain rejects return without
//     ANY lock; admits reserve quanta with one CAS and then take the shard
//     mutex only to commit, where the exact test re-confirms (reason
//     kAtomicFastPath). Decisions the quantized view cannot settle —
//     boundary ties and anything inside the rounding slack — fall through
//     to the mutex path below (admits there carry kSlowPathFallback).
//   * HOT PATH — route(spec.id) picks the home shard; under that shard's
//     mutex its private simulator is advanced and its controller decides.
//     Zero cross-shard synchronization.
//   * GLOBAL FALLBACK — a task the home shard cannot take is retried under
//     the global mutex (all shard locks, fixed order): first against every
//     other shard's existing headroom, then by shrinking donor shards to
//     their minimum feasible weights and growing one receiver so the task
//     fits (work-stealing of unused quota). A task rejected even here is
//     reported with the TRUE global LHS pair and
//     Reason::kQuotaFallbackRejected. The weight partition makes per-shard
//     tests conservative, so the fallback can only ever admit MORE than
//     pure-local quotas — never a task the unsharded region test rejects.
//   * PERIODIC REBALANCE — every rebalance_interval decisions (and on
//     demand) weights are reassigned demand-proportionally, floored at each
//     shard's minimum feasible weight, so persistent skew does not keep
//     forcing arrivals through the fallback lock.
//
// Time: each shard owns a private sim::Simulator. Shard clocks are advanced
// to the caller-presented `now` lazily; a caller presenting a timestamp
// older than the shard's clock is anchored at the shard clock (per-shard
// time is monotone). Decisions carry the shard's SCALED LHS view for local
// decisions and the true global LHS for fallback rejections; `bound` is
// always the full region bound B.
//
// Thread safety: try_admit / rebalance / stats / global_utilizations may be
// called from any thread. Lock order is global_mu_ before shard mutexes in
// index order; the hot path holds only the home shard's mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/admission.h"
#include "core/admission_decision.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "metrics/counters.h"
#include "obs/observer.h"
#include "service/admitter.h"
#include "service/atomic_admission.h"
#include "service/quota.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace frap::service {

struct ShardedAdmissionConfig {
  std::size_t num_shards = 4;
  // Weight floor per shard (see QuotaPlan): keeps every shard able to admit
  // small tasks locally even after aggressive stealing.
  double min_weight = QuotaPlan::kDefaultMinWeight;
  // When false, a local rejection is final (pure-local quotas): used by the
  // soundness A/B tests as the comparison baseline and by benchmarks to
  // measure the uncontended hot path.
  bool enable_fallback = true;
  // Automatic demand-proportional rebalance every this many decisions;
  // 0 disables (rebalance() can still be called explicitly).
  // NOTE: decisions settled entirely on the atomic fast path deliberately
  // do not tick the rebalance cadence — the counter it would need is the
  // one globally-shared atomic the fast path exists to avoid. Slow-path
  // traffic (which is exactly the traffic a skewed weight split produces)
  // still drives it.
  std::uint64_t rebalance_interval = 4096;
  // Lock-free fixed-point fast path (service/atomic_admission.h). Off, the
  // service behaves exactly as before the atomic path existed (admits are
  // reported kAdmitted) — the A/B soundness tests use that as the mirror.
  bool enable_atomic_fast_path = true;
};

struct ShardStats {
  std::uint64_t admits = 0;           // mutex hot-path admissions
  std::uint64_t rejects = 0;          // final local rejections
  std::uint64_t fallback_admits = 0;  // admitted via the global path
  std::uint64_t fallback_rejects = 0; // rejected even by the global path
  std::uint64_t atomic_admits = 0;    // CAS-reserved, exact-confirmed
  std::uint64_t atomic_rejects = 0;   // final lock-free rejections
  // Atomic tests that landed in the rounding slack and were retried on the
  // exact path (their outcome is counted under admits/rejects/fallback_*).
  std::uint64_t atomic_inconclusive = 0;
  double weight = 0;
  std::size_t live_tasks = 0;
};

struct ServiceStats {
  std::vector<ShardStats> shards;
  // Every try_admit call, whichever path settled it (slow-path decisions
  // plus per-shard atomic admits/rejects).
  std::uint64_t decisions = 0;
  std::uint64_t rebalances = 0;

  std::uint64_t total_admits() const {
    std::uint64_t n = 0;
    for (const auto& s : shards) {
      n += s.admits + s.fallback_admits + s.atomic_admits;
    }
    return n;
  }
  std::uint64_t total_rejects() const {
    std::uint64_t n = 0;
    for (const auto& s : shards) {
      n += s.rejects + s.fallback_rejects + s.atomic_rejects;
    }
    return n;
  }
};

class ShardedAdmissionService final : public Admitter {
 public:
  ShardedAdmissionService(core::FeasibleRegion region,
                          ShardedAdmissionConfig config = {});

  ShardedAdmissionService(const ShardedAdmissionService&) = delete;
  ShardedAdmissionService& operator=(const ShardedAdmissionService&) = delete;

  // Admitter. Decides `spec` presented at `now` on its home shard; falls
  // back to the global path when enabled and the home shard rejects.
  [[nodiscard]] core::AdmissionDecision try_admit(const core::TaskSpec& spec,
                                                  Time now) override;

  std::size_t num_shards() const { return shards_.size(); }

  // Home shard of a task id. Deliberately the plain modulus so tests and
  // benchmarks can construct ids that land on a chosen shard.
  std::size_t route(std::uint64_t task_id) const {
    return static_cast<std::size_t>(task_id % shards_.size());
  }

  // Demand-proportional weight reassignment, floored at each shard's
  // minimum feasible weight. No-op (not counted) when every weight would
  // move by less than the deadband.
  void rebalance(Time now);

  // Snapshot of per-shard counters and weights. Counters are relaxed
  // atomics: a snapshot taken concurrently with admissions is eventually
  // consistent.
  ServiceStats stats() const;

  // True (unscaled) per-stage utilization across all shards, advanced to
  // `now`. Takes the global lock.
  std::vector<double> global_utilizations(Time now);

  const core::FeasibleRegion& region() const { return region_; }
  const ShardedAdmissionConfig& config() const { return cfg_; }

  // Decision tracing (docs/observability.md): builds one Observer with a
  // DecisionSink per shard (ring + histograms, serialized by that shard's
  // mutex) plus a service-level sink that receives kFallback / kRebalance
  // span events under global_mu_. Call once, before concurrent use; a null
  // clock wires the real monotonic clock (tests pass a ManualClock).
  void enable_tracing(const obs::SinkConfig& sink_cfg = {},
                      const obs::Clock* clock = nullptr);
  [[nodiscard]] bool tracing_enabled() const { return observer_ != nullptr; }

  // The live observer (tracing must be enabled). Reading a live sink's ring
  // via observer().sink(k).ring().snapshot() is always safe; histogram /
  // counter reads need obs_snapshot().
  obs::Observer& observer();

  // Consistent metrics snapshot: takes global_mu_ plus every shard mutex,
  // so counters and histograms are mutually coherent.
  obs::MetricsSnapshot obs_snapshot() const;

 private:
  struct Shard {
    Shard(const core::FeasibleRegion& region, double w);

    mutable std::mutex mu;
    sim::Simulator sim;
    core::SyntheticUtilizationTracker tracker;
    core::AdmissionController controller;
    double weight;  // guarded by mu (plus global_mu_ for writers)
    // Lock-free quantized view + the 1/weight the fast path scales
    // contributions by (written under mu, read without it).
    AtomicAdmissionGuard guard;
    std::atomic<double> inv_weight;
    metrics::AtomicCounter admits;
    metrics::AtomicCounter rejects;
    metrics::AtomicCounter fallback_admits;
    metrics::AtomicCounter fallback_rejects;
    metrics::AtomicCounter atomic_admits;
    metrics::AtomicCounter atomic_rejects;
    metrics::AtomicCounter atomic_inconclusive;
  };

  // All-shard helpers; caller must hold global_mu_ and every shard mutex.
  Time advance_all_locked(Time now);
  std::vector<std::size_t> shards_by_headroom_locked() const;
  std::vector<double> true_utilizations_locked() const;
  // Smallest weight at which the shard's current true load still passes the
  // region test in the scaled view (>= cfg_.min_weight; bisection).
  double min_feasible_weight_locked(const Shard& sh) const;
  // Would the shard pass the region test at weight `w` with `add` (true,
  // unscaled contributions) on top of its current load?
  bool fits_at_weight_locked(const Shard& sh,
                             const std::vector<double>& add, double w) const;
  void apply_weight_locked(Shard& sh, double w_new);

  core::AdmissionDecision fallback(std::size_t origin,
                                   const core::TaskSpec& spec, Time now);
  core::AdmissionDecision fallback_decide_locked(std::size_t origin,
                                                 const core::TaskSpec& spec,
                                                 Time now, Time eff);
  void maybe_auto_rebalance(Time now);

  // Republishes one shard's guard from its exact tracker/simulator state;
  // caller holds that shard's mutex. `released_quanta` retires a CAS
  // reservation being converted (or abandoned) by this same critical
  // section. No-op when the atomic path is disabled.
  void sync_guard_locked(Shard& sh, std::uint64_t released_quanta);
  // All shards; caller holds global_mu_ and every shard mutex.
  void sync_all_guards_locked();
  // The decision record for a lock-free rejection: conservative quantized
  // LHS pair, arrival == decided_at == now (the fast path never touches
  // the shard clock).
  core::AdmissionDecision fast_reject_decision(
      const AtomicAdmissionGuard::FastResult& fast, Time now) const;

  core::FeasibleRegion region_;
  ShardedAdmissionConfig cfg_;
  QuotaPlan quota_;  // guarded by global_mu_ + all shard mutexes
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex global_mu_;
  // Slow-path decisions only: the atomic fast path never touches this
  // shared atomic (it is exactly the cache-line ping-pong the fast path
  // eliminates); stats() adds the per-shard fast counters back in.
  std::atomic<std::uint64_t> decisions_{0};
  metrics::AtomicCounter rebalances_;
  // Set once by enable_tracing (before concurrent use); the fast path
  // reads it lock-free to disable fast rejects, which would otherwise
  // bypass the per-shard recording sinks.
  std::atomic<bool> tracing_{false};
  std::unique_ptr<obs::Observer> observer_;  // null until enable_tracing
};

}  // namespace frap::service
