// The unified admission interface.
//
// Every admission strategy in the repo — the paper's exact test
// (core::AdmissionController), batch, shedding and graph admission, and the
// sharded concurrent service (service::ShardedAdmissionService) — implements
// this one-method interface with the canonical signature
//
//   [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec, Time now)
//
// where `now` is the task's arrival instant: the implementation anchors the
// admitted task's absolute deadline at now + spec.deadline and fills the
// decision's arrival/decided_at fields from it. Callers that used the old
// per-class entry points (bare try_admit(spec), the absolute-deadline
// overload, reference paths) should migrate to this signature; the
// remaining one-argument overloads are thin shims that forward
// sim.now() as the arrival.
//
// Header-only on purpose: the interface lives in src/service/ but depends
// only on the core vocabulary types, so src/core can implement it without
// a link dependency on the service library.
#pragma once

#include "core/admission_decision.h"
#include "core/task.h"
#include "util/time.h"

namespace frap {

class Admitter {
 public:
  virtual ~Admitter() = default;

  // Decides the task presented at arrival instant `now`. Admitted tasks are
  // committed with expiry at now + spec.deadline; the decision records the
  // evaluated LHS pair and the bound it was tested against.
  [[nodiscard]] virtual core::AdmissionDecision try_admit(
      const core::TaskSpec& spec, Time now) = 0;

 protected:
  Admitter() = default;
  Admitter(const Admitter&) = default;
  Admitter& operator=(const Admitter&) = default;
};

}  // namespace frap
