// Quota plans for the sharded admission service.
//
// The region budget Σ_j f(U_j) ≤ B is partitioned across K shards by
// WEIGHTS w_k with Σ w_k = 1, not by splitting B itself: shard k tracks its
// tasks' contributions pre-divided by w_k and tests them against the FULL
// bound B. Because f is convex with f(0) = 0 (so f(w·x) ≤ w·f(x)),
//
//   f(Σ_k U_jk) = f(Σ_k w_k · Ũ_jk) ≤ Σ_k w_k f(Ũ_jk)
//
// per stage, hence Σ_j f(Σ_k U_jk) ≤ Σ_k w_k [Σ_j f(Ũ_jk)] ≤ max_k L_k ≤ B
// whenever every shard's scaled LHS L_k stays within B — per-shard
// admissions are globally sound with no cross-shard communication
// (docs/admission_service.md has the full derivation). Splitting B into
// per-shard bounds directly would be UNSOUND: convexity makes f
// superadditive, so K shards each inside B/K can jointly sit outside B.
//
// QuotaPlan is the bookkeeping for those weights: validated construction,
// equal split, and the demand-proportional reassignment used by the
// rebalancer. It is deliberately free of synchronization — the service
// serializes all weight changes under its global mutex.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace frap::service {

class QuotaPlan {
 public:
  // No shard's weight may drop below this by default: a zero-weight shard
  // could admit nothing locally and would divide by zero in the scaled view.
  static constexpr double kDefaultMinWeight = 0.01;

  // Equal split across `num_shards` shards.
  explicit QuotaPlan(std::size_t num_shards,
                     double min_weight = kDefaultMinWeight);

  std::size_t size() const { return w_.size(); }
  double weight(std::size_t k) const;
  double min_weight() const { return min_weight_; }
  std::span<const double> weights() const { return w_; }

  // Replaces the weights. Preconditions: same size, each >= min_weight
  // (up to FP tolerance), sum == 1 (up to FP tolerance).
  void set_weights(std::vector<double> weights);

  // Demand-proportional weights floored per shard: each shard keeps
  // floor[k] and the remaining 1 - Σ floor is distributed in proportion to
  // demand[k] (equally when total demand is zero). Pure function; the
  // result sums to 1 and respects the floors, provided Σ floor <= 1.
  static std::vector<double> proportional(std::span<const double> demand,
                                          std::span<const double> floor);

 private:
  std::vector<double> w_;
  double min_weight_;
};

}  // namespace frap::service
