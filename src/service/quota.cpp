#include "service/quota.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace frap::service {

namespace {
// Weight-sum and per-weight floor checks tolerate accumulated FP noise from
// repeated proportional reassignment.
constexpr double kWeightTolerance = 1e-9;
}  // namespace

QuotaPlan::QuotaPlan(std::size_t num_shards, double min_weight)
    : min_weight_(min_weight) {
  FRAP_EXPECTS(num_shards >= 1);
  FRAP_EXPECTS(min_weight > 0);
  FRAP_EXPECTS(min_weight * static_cast<double>(num_shards) <= 1.0);
  w_.assign(num_shards, 1.0 / static_cast<double>(num_shards));
}

double QuotaPlan::weight(std::size_t k) const {
  FRAP_EXPECTS(k < w_.size());
  return w_[k];
}

void QuotaPlan::set_weights(std::vector<double> weights) {
  FRAP_EXPECTS(weights.size() == w_.size());
  double sum = 0;
  for (double w : weights) {
    FRAP_EXPECTS(std::isfinite(w));
    FRAP_EXPECTS(w + kWeightTolerance >= min_weight_);
    sum += w;
  }
  FRAP_EXPECTS(std::fabs(sum - 1.0) <= kWeightTolerance);
  w_ = std::move(weights);
}

std::vector<double> QuotaPlan::proportional(std::span<const double> demand,
                                            std::span<const double> floor) {
  FRAP_EXPECTS(!demand.empty());
  FRAP_EXPECTS(demand.size() == floor.size());
  double total_floor = 0;
  double total_demand = 0;
  for (std::size_t k = 0; k < demand.size(); ++k) {
    FRAP_EXPECTS(demand[k] >= 0);
    FRAP_EXPECTS(floor[k] >= 0);
    total_floor += floor[k];
    total_demand += demand[k];
  }
  FRAP_EXPECTS(total_floor <= 1.0 + kWeightTolerance);

  const double spare = std::max(0.0, 1.0 - total_floor);
  const double equal_share = 1.0 / static_cast<double>(demand.size());
  std::vector<double> w(demand.size());
  for (std::size_t k = 0; k < demand.size(); ++k) {
    const double share = total_demand > 0 ? demand[k] / total_demand
                                          : equal_share;
    w[k] = floor[k] + spare * share;
  }
  return w;
}

}  // namespace frap::service
