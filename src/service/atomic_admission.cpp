#include "service/atomic_admission.h"

#include <algorithm>
#include <cmath>

#include "core/fixed_point.h"
#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::service {

namespace {

// Absolute upward nudge on u_cap = f_inv(bound): the closed-form inverse
// and every f evaluation each round to ~1 ulp (~1e-16 here); 1e-9 swamps
// that by seven orders of magnitude while costing a negligible sliver of
// d_hi tightness. Keeps the "increment at u_cap dominates the increment at
// any feasible committed base" argument true in floating point, not just in
// real arithmetic.
constexpr double kCapMargin = 1e-9;

}  // namespace

AtomicAdmissionGuard::AtomicAdmissionGuard(const core::FeasibleRegion& region)
    : qbound_floor_(region.quantized_bound_floor()),
      qbound_ceil_(region.quantized_bound_ceil()),
      next_event_at_(util::kInf) {
  u_cap_ = std::min(core::stage_delay_factor_inverse(region.bound()) +
                        kCapMargin,
                    1.0 - 1e-12);
  f_ucap_ = core::stage_delay_factor(u_cap_);
}

// frap:contract(hotpath)
bool AtomicAdmissionGuard::try_reserve(std::uint64_t quanta) {
  // frap:contract(order: relaxed seed for the CAS loop; the CAS itself
  // re-reads with its own ordering, so a stale seed only costs one retry)
  std::uint64_t old = qlhs_.load(std::memory_order_relaxed);
  while (true) {
    // frap:contract(rounds: conservative-for=admit) -- saturating add of an
    // UP-rounded reservation over-estimates the committed+reserved LHS.
    const std::uint64_t next = core::fixed::add_sat(old, quanta);
    // STRICT predicate: a reservation landing exactly on the bound floor
    // (boundary tie) is refused here and retried on the exact path.
    if (!core::FeasibleRegion::admits_quantized(next, qbound_floor_)) {
      return false;
    }
    // frap:contract(order: acq_rel success pairs with every other
    // reservation CAS and reconcile's fetch_add so the admit chain
    // totally orders; relaxed failure just reloads the seed)
    if (qlhs_.compare_exchange_weak(old, next, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
}

// frap:contract(hotpath)
AtomicAdmissionGuard::FastResult AtomicAdmissionGuard::classify(
    const core::TaskSpec& spec, double inv_weight, Time now,
    bool allow_fast_reject) {
  FastResult r;
  const double inv_d = util::safe_inv(spec.deadline);
  const std::size_t n = spec.stages.size();

  // One pass over the touched stages builds both bounds on the task's
  // exact (scaled) LHS delta:
  //   d_lo = Σ f(c_j)                           — convexity at base 0,
  //   d_hi = Σ [f(u_cap + c_j) − f(u_cap)]      — convexity at the cap.
  double d_lo = 0;
  double d_hi = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double c = spec.stages[j].compute * inv_d * inv_weight;
    if (c <= 0) continue;
    if (c >= 1.0) {
      // The task saturates stage j at ANY committed state: certain reject,
      // no staleness gate needed.
      r.saturates = true;
      break;
    }
    d_lo += core::stage_delay_factor(c);
    const double base = u_cap_ + c;
    d_hi += base >= 1.0 ? util::kInf
                        : core::stage_delay_factor(base) - f_ucap_;
  }

  if (r.saturates) {
    // State-independent certain reject — but only deliverable lock-free when
    // fast rejects are allowed (under tracing every decision must flow
    // through a recording sink, so fall through to the exact path).
    if (allow_fast_reject) {
      r.verdict = Verdict::kReject;
      r.lhs_floor = core::fixed::to_double(committed_floor());
      r.delta_floor = util::kInf;
    }
    return r;
  }

  if (allow_fast_reject) {
    // Fast reject needs a CONSISTENT (floor, horizon) pair from one
    // reconcile: the floor lower-bounds the committed LHS only at states
    // where no expiry at or before `now` is pending, which is exactly what
    // the matching horizon certifies. Standard seqlock read; a torn read
    // (concurrent reconcile) just falls through to the exact path.
    // frap:contract(order: acquire pairs with reconcile_locked's even
    // release publish; payload reads below cannot float above this load)
    const std::uint64_t s1 =
        reconcile_seq_.load(std::memory_order_acquire);
    // frap:contract(order: relaxed payload reads; the seqlock bracket, not
    // the loads themselves, certifies the (floor, horizon) pair)
    const std::uint64_t qfloor = qfloor_.load(std::memory_order_relaxed);
    // frap:contract(order: relaxed payload read, same bracket as qfloor)
    const Time horizon = next_event_at_.load(std::memory_order_relaxed);
    // frap:contract(order: acquire fence orders both payload reads before
    // the re-check; pairs with the writer's release fence)
    std::atomic_thread_fence(std::memory_order_acquire);
    // frap:contract(order: relaxed re-check; the fence above already
    // ordered it, equality with s1 is what certifies consistency)
    const bool consistent =
        (s1 & 1) == 0 &&
        reconcile_seq_.load(std::memory_order_relaxed) == s1;
    // frap:contract(rounds: conservative-for=reject) -- DOWN-rounding the
    // delta under-estimates the task's exact LHS contribution.
    const std::uint64_t q_lo = core::fixed::quantize_down(d_lo);
    // frap:contract(rounds: conservative-for=reject) -- floor+floor stays
    // an under-estimate; only a certain overshoot rejects.
    if (consistent && now < horizon &&
        core::FeasibleRegion::rejects_quantized(
            core::fixed::add_sat(qfloor, q_lo), qbound_ceil_)) {
      r.verdict = Verdict::kReject;
      r.lhs_floor = core::fixed::to_double(qfloor);
      r.delta_floor = d_lo;
      return r;
    }
  }

  if (std::isfinite(d_hi)) {
    // frap:contract(rounds: conservative-for=admit) -- the reservation
    // rounds the over-estimated delta UP; admission can only get stricter.
    const std::uint64_t q_hi = core::fixed::quantize_up(d_hi);
    if (try_reserve(q_hi)) {
      r.verdict = Verdict::kAdmit;
      r.reserved = q_hi;
      return r;
    }
  }
  return r;  // kInconclusive: retry on the exact mutex path
}

// frap:contract(hotpath) -- called under the shard mutex but must not
// itself allocate, throw, or take further locks.
void AtomicAdmissionGuard::reconcile_locked(double committed_lhs,
                                            Time next_event_at,
                                            std::uint64_t released_quanta) {
  // frap:contract(rounds: conservative-for=reject) -- the republished floor
  // under-estimates the exact committed LHS; fast rejects stay certain.
  const std::uint64_t new_floor = core::fixed::quantize_down(committed_lhs);
  // frap:contract(order: relaxed; only this mutex-holding writer mutates
  // qfloor_, so its own last store is the only value this can observe)
  const std::uint64_t old_floor = qfloor_.load(std::memory_order_relaxed);
  // Seqlock write section (the shard mutex serializes writers; the seq
  // only guards readers against torn (floor, horizon) pairs).
  // frap:contract(order: relaxed odd mark; the release fence below is what
  // orders it before the payload stores for readers)
  reconcile_seq_.fetch_add(1, std::memory_order_relaxed);  // -> odd
  // frap:contract(order: release fence keeps the payload stores below from
  // sinking above the odd mark; pairs with the reader's acquire fence)
  std::atomic_thread_fence(std::memory_order_release);
  // frap:contract(order: relaxed payload stores inside the seqlock bracket)
  qfloor_.store(new_floor, std::memory_order_relaxed);
  // frap:contract(order: relaxed payload store, same bracket as qfloor_)
  next_event_at_.store(next_event_at, std::memory_order_relaxed);
  // frap:contract(order: release even publish pairs with the reader's
  // acquire first load; a reader seeing even sees both payload stores)
  reconcile_seq_.fetch_add(1, std::memory_order_release);  // -> even
  // Unsigned wrap-around IS two's-complement signed addition, so a negative
  // floor move (expiries drained) subtracts cleanly. fetch_add (not store!)
  // so reservations CAS-ed in concurrently are preserved.
  // frap:contract(order: acq_rel joins the reservation-CAS chain on qlhs_;
  // see try_reserve)
  qlhs_.fetch_add(new_floor - old_floor - released_quanta,
                  std::memory_order_acq_rel);
}

}  // namespace frap::service
