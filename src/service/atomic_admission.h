// Lock-free fixed-point admission guard — one per shard.
//
// The guard lets most admission decisions complete without the shard mutex
// by keeping a conservatively-quantized view of the shard's region LHS in a
// single 64-bit atomic (the sledge-serverless admissions-control idiom:
// admitted capacity in fixed-point granularity, reserved by CAS). All
// quantities are 32.32 quanta (core/fixed_point.h).
//
// State (all updated so that rounding errors are conservative):
//   * qlhs_   — committed-LHS floor PLUS every outstanding reservation
//               (each rounded UP). Invariant: qlhs_ == qfloor_ + Σ reserved.
//   * qfloor_ — floor of the EXACT committed LHS, republished under the
//               shard mutex after every mutation (reconcile_locked).
//   * next_event_at_ — the shard simulator's earliest pending event. A
//               decision for an arrival strictly BEFORE this horizon sees
//               exactly the state the exact path would see: no expiry can
//               fire in between, so a fast reject is decision-identical to
//               the mutex path, and the horizon also keeps rejects LIVE
//               (once arrivals pass an expiry the path defers to the mutex,
//               which drains the expiry and frees capacity).
//
// classify() returns one of three verdicts for an arriving task:
//   * kAdmit — a CAS installed a reservation of ceil(d_hi) quanta, where
//     d_hi = Σ_{c_j>0} [f(u_cap + c_j) − f(u_cap)] with u_cap = f⁻¹(bound)
//     over-estimates the task's exact LHS delta at ANY feasible committed
//     state: each committed stage satisfies f(U_j) ≤ Σ f ≤ bound, so
//     U_j ≤ u_cap, and convexity of f makes the increment nondecreasing in
//     the base. Together with the STRICT quantized predicate
//     (FeasibleRegion::admits_quantized) this proves the exact test at
//     commit time re-admits the task — the rounding-direction soundness
//     argument is spelled out in docs/admission_service.md.
//   * kReject — the task provably fails the exact test: either some c_j ≥ 1
//     (state-independent stage saturation), or
//     floor(committed) + floor(Σ f(c_j)) exceeds the bound ceiling
//     (Σ f(c_j) under-estimates the delta by convexity at base 0) AND the
//     arrival is inside the staleness horizon.
//   * kInconclusive — the atomic test landed within the rounding slack of
//     the bound (or a weight/expiry horizon got in the way): the caller
//     must retry on the exact mutex path. Boundary TIES quantize here, by
//     design — never into kAdmit.
//
// Weight changes: a rebalance alters the scaled view mid-flight, which can
// invalidate an outstanding reservation's d_hi bound. The sharded service
// therefore re-runs the exact test under the mutex as the final authority
// on every commit; the guard's guarantee is "provably re-admittable while
// the shard's weight is unchanged", which is exactly what the A/B mirror
// harness exercises.
//
// Thread safety: classify() from any thread; reconcile_locked() only under
// the owning shard's mutex. frap-lint R5 sanctions the atomics (src/service
// concurrency carve-out).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/feasible_region.h"
#include "core/task.h"
#include "util/time.h"

namespace frap::service {

class AtomicAdmissionGuard {
 public:
  enum class Verdict : std::uint8_t { kAdmit, kReject, kInconclusive };

  struct FastResult {
    Verdict verdict = Verdict::kInconclusive;
    // Quanta reserved by the CAS (kAdmit only); hand back to
    // reconcile_locked as `released_quanta` once the exact path commits or
    // declines the task.
    std::uint64_t reserved = 0;
    // kReject detail: true when some scaled c_j >= 1 (stage saturation).
    bool saturates = false;
    // Conservative reporting pair for fast rejects: the committed-LHS floor
    // at classify time and the under-estimated task delta.
    double lhs_floor = 0;
    double delta_floor = 0;
  };

  explicit AtomicAdmissionGuard(const core::FeasibleRegion& region);

  AtomicAdmissionGuard(const AtomicAdmissionGuard&) = delete;
  AtomicAdmissionGuard& operator=(const AtomicAdmissionGuard&) = delete;

  // Lock-free three-way classification of `spec` (exact-contribution mode,
  // scaled by `inv_weight`) presented at `now`. When `allow_fast_reject` is
  // false only kAdmit / kInconclusive are possible (the sharded service
  // disables fast rejects while tracing, so every traced decision flows
  // through a recording sink).
  [[nodiscard]] FastResult classify(const core::TaskSpec& spec,
                                    double inv_weight, Time now,
                                    bool allow_fast_reject);

  // Attempts to install a reservation of `quanta` via CAS against the
  // STRICT quantized admit predicate. Public as the boundary-tie regression
  // seam: reserving exactly up to the bound floor must fail (tie ->
  // inconclusive), one quantum less must succeed.
  [[nodiscard]] bool try_reserve(std::uint64_t quanta);

  // Republishes the exact committed state. Call under the owning shard's
  // mutex after EVERY mutation batch (admission commit, expiry-advancing
  // run_until, rescale), passing the tracker's exact LHS, the simulator's
  // earliest pending event (+inf when idle), and the quanta of the
  // reservation being retired by this call (0 when none). The quantized
  // LHS is adjusted by fetch_add of the floor delta minus the released
  // reservation — never a plain store, which would race concurrent CAS
  // reservations.
  void reconcile_locked(double committed_lhs, Time next_event_at,
                        std::uint64_t released_quanta);

  // Observability / test accessors.
  [[nodiscard]] std::uint64_t quantized_lhs() const {
    // frap:contract(order: acquire pairs with the release fetch_adds in
    // try_reserve/reconcile_locked so a test that observed a commit sees it)
    return qlhs_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t committed_floor() const {
    // frap:contract(order: acquire pairs with reconcile_locked's even
    // seqlock publish; a reader that saw the publish sees this floor)
    return qfloor_.load(std::memory_order_acquire);
  }
  [[nodiscard]] Time staleness_horizon() const {
    // frap:contract(order: acquire pairs with reconcile_locked's even
    // seqlock publish; the horizon is never newer than the floor read)
    return next_event_at_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t bound_floor() const { return qbound_floor_; }
  [[nodiscard]] std::uint64_t bound_ceil() const { return qbound_ceil_; }

 private:
  const std::uint64_t qbound_floor_;
  const std::uint64_t qbound_ceil_;
  // Per-stage utilization cap of any feasible committed state, nudged up a
  // hair so floating-point rounding can never make it optimistic, and its
  // f-term (subtracted once per touched stage when building d_hi).
  double u_cap_;
  double f_ucap_;

  std::atomic<std::uint64_t> qlhs_{0};
  std::atomic<std::uint64_t> qfloor_{0};
  std::atomic<Time> next_event_at_;
  // Seqlock over the (qfloor_, next_event_at_) pair: a fast reject is only
  // sound when BOTH come from the same reconcile — a floor from one
  // publication combined with a horizon from a later one could reject a
  // task whose capacity an interleaved expiry drain just freed. Odd while
  // reconcile_locked is writing; readers that observe a bump fall through
  // to the exact path instead of retrying.
  std::atomic<std::uint64_t> reconcile_seq_{0};
};

}  // namespace frap::service
