#include "service/sharded_admission.h"

#include <algorithm>
#include <cmath>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::service {

namespace {

using core::AdmissionDecision;

// Scaled per-stage utilization above this is treated as saturated in the
// weight-search arithmetic (the exact test uses u >= 1; the margin keeps the
// bisection away from f's pole).
constexpr double kMaxScaledUtil = 0.999;

// Weight moves smaller than this are not worth a rescale pass.
constexpr double kRebalanceDeadband = 0.02;

}  // namespace

ShardedAdmissionService::Shard::Shard(const core::FeasibleRegion& region,
                                      double w)
    : tracker(sim, region.num_stages()),
      controller(sim, tracker, region),
      weight(w),
      guard(region),
      inv_weight(1.0 / w) {
  controller.set_contribution_scale(1.0 / w);
}

ShardedAdmissionService::ShardedAdmissionService(core::FeasibleRegion region,
                                                 ShardedAdmissionConfig config)
    : region_(std::move(region)),
      cfg_(config),
      quota_(config.num_shards, config.min_weight) {
  FRAP_EXPECTS(cfg_.num_shards >= 1);
  shards_.reserve(cfg_.num_shards);
  for (std::size_t k = 0; k < cfg_.num_shards; ++k) {
    shards_.push_back(std::make_unique<Shard>(region_, quota_.weight(k)));
  }
}

core::AdmissionDecision ShardedAdmissionService::try_admit(
    const core::TaskSpec& spec, Time now) {
  const std::size_t k = route(spec.id);
  Shard& sh = *shards_[k];

  if (cfg_.enable_atomic_fast_path) {
    // No lock taken here. Fast rejects are disabled while tracing so every
    // traced decision flows through a recording sink.
    // frap:contract(order: relaxed; pairs with the release store in
    // attach_observer -- a stale false only lets one more reject go
    // untraced during attach, never corrupts a decision)
    const bool allow_fast_reject = !tracing_.load(std::memory_order_relaxed);
    const AtomicAdmissionGuard::FastResult fast =
        // frap:contract(order: relaxed; a rebalance-stale inv_weight only
        // yields kInconclusive, and the exact mutex path re-reads it)
        sh.guard.classify(spec, sh.inv_weight.load(std::memory_order_relaxed),
                          now, allow_fast_reject);
    switch (fast.verdict) {
      case AtomicAdmissionGuard::Verdict::kAdmit: {
        // The CAS reserved ceil(d_hi) quanta; the shard mutex is taken only
        // to COMMIT, where the exact test is the final authority (a
        // concurrent weight change can invalidate the reservation's bound).
        AdmissionDecision d;
        {
          std::scoped_lock lk(sh.mu);
          const Time eff = std::max(now, sh.sim.now());
          sh.sim.run_until(eff);
          d = sh.controller.try_admit_tagged(
              spec, eff, AdmissionDecision::Reason::kAtomicFastPath);
          sync_guard_locked(sh, fast.reserved);
        }
        if (d.admitted) {
          sh.atomic_admits.increment();
          return d;  // deliberately no maybe_auto_rebalance (see config)
        }
        // Reservation degraded by a weight race: same as a local reject.
        sh.atomic_inconclusive.increment();
        if (cfg_.enable_fallback) {
          d = fallback(k, spec, now);
        } else {
          sh.rejects.increment();
        }
        maybe_auto_rebalance(now);
        return d;
      }
      case AtomicAdmissionGuard::Verdict::kReject: {
        if (!cfg_.enable_fallback) {
          sh.atomic_rejects.increment();
          return fast_reject_decision(fast, now);
        }
        // The home shard provably rejects; decide globally (the fallback
        // re-tests every shard, home included, under the exact predicate).
        AdmissionDecision d = fallback(k, spec, now);
        maybe_auto_rebalance(now);
        return d;
      }
      case AtomicAdmissionGuard::Verdict::kInconclusive:
        sh.atomic_inconclusive.increment();
        break;  // inside the rounding slack: exact mutex path below
    }
  }

  const AdmissionDecision::Reason admit_tag =
      cfg_.enable_atomic_fast_path
          ? AdmissionDecision::Reason::kSlowPathFallback
          : AdmissionDecision::Reason::kAdmitted;
  AdmissionDecision d;
  {
    std::scoped_lock lk(sh.mu);
    // Per-shard time is monotone: a caller presenting a timestamp older
    // than the shard clock is anchored at the shard clock.
    const Time eff = std::max(now, sh.sim.now());
    sh.sim.run_until(eff);
    d = sh.controller.try_admit_tagged(spec, eff, admit_tag);
    sync_guard_locked(sh, 0);
  }

  if (d.admitted) {
    sh.admits.increment();
  } else if (cfg_.enable_fallback) {
    d = fallback(k, spec, now);
  } else {
    sh.rejects.increment();
  }
  maybe_auto_rebalance(now);
  return d;
}

void ShardedAdmissionService::sync_guard_locked(Shard& sh,
                                                std::uint64_t released_quanta) {
  if (!cfg_.enable_atomic_fast_path) return;
  sh.guard.reconcile_locked(sh.tracker.cached_lhs(), sh.sim.next_event_at(),
                            released_quanta);
}

void ShardedAdmissionService::sync_all_guards_locked() {
  for (const auto& sh : shards_) sync_guard_locked(*sh, 0);
}

core::AdmissionDecision ShardedAdmissionService::fast_reject_decision(
    const AtomicAdmissionGuard::FastResult& fast, Time now) const {
  AdmissionDecision d;
  d.admitted = false;
  d.reason = fast.saturates ? AdmissionDecision::Reason::kStageSaturated
                            : AdmissionDecision::Reason::kRegionFull;
  d.bound = region_.bound();
  d.arrival = now;
  d.decided_at = now;
  d.lhs_before = fast.lhs_floor;
  d.lhs_with_task =
      fast.saturates ? util::kInf : fast.lhs_floor + fast.delta_floor;
  return d;
}

Time ShardedAdmissionService::advance_all_locked(Time now) {
  Time eff = now;
  for (const auto& sh : shards_) eff = std::max(eff, sh->sim.now());
  for (const auto& sh : shards_) sh->sim.run_until(eff);
  return eff;
}

std::vector<std::size_t> ShardedAdmissionService::shards_by_headroom_locked()
    const {
  // Largest scaled headroom (bound - L_k) first; a shard at or beyond the
  // boundary sorts last.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    order.emplace_back(region_.bound() - shards_[k]->tracker.cached_lhs(), k);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  std::vector<std::size_t> idx;
  idx.reserve(order.size());
  for (const auto& [headroom, k] : order) idx.push_back(k);
  return idx;
}

std::vector<double> ShardedAdmissionService::true_utilizations_locked() const {
  std::vector<double> u(region_.num_stages(), 0.0);
  for (const auto& sh : shards_) {
    for (std::size_t j = 0; j < u.size(); ++j) {
      u[j] += sh->weight * sh->tracker.utilization(j);
    }
  }
  return u;
}

double ShardedAdmissionService::min_feasible_weight_locked(
    const Shard& sh) const {
  const std::size_t n = region_.num_stages();
  std::vector<double> x(n);  // true per-stage load of this shard
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = sh.weight * sh.tracker.utilization(j);
  }
  const auto feasible = [&](double w) {
    double scaled_lhs = 0;
    for (double xj : x) {
      const double u = xj / w;
      if (u >= kMaxScaledUtil) return false;
      scaled_lhs += core::stage_delay_factor(u);
    }
    return region_.admits(scaled_lhs);
  };

  const double floor = cfg_.min_weight;
  if (feasible(floor)) return floor;
  // feasible is monotone in w and holds at the current weight (the shard's
  // running LHS is kept within the bound by every admission); bisect to the
  // boundary from there.
  double lo = floor;
  double hi = sh.weight;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (feasible(mid) ? hi : lo) = mid;
  }
  return hi;
}

bool ShardedAdmissionService::fits_at_weight_locked(
    const Shard& sh, const std::vector<double>& add, double w) const {
  double scaled_lhs = 0;
  for (std::size_t j = 0; j < add.size(); ++j) {
    const double u = (sh.weight * sh.tracker.utilization(j) + add[j]) / w;
    if (u >= kMaxScaledUtil) return false;
    scaled_lhs += core::stage_delay_factor(u);
  }
  return region_.admits(scaled_lhs);
}

void ShardedAdmissionService::apply_weight_locked(Shard& sh, double w_new) {
  if (util::almost_equal(sh.weight, w_new)) return;
  // Tracked contributions are stored pre-divided by the weight, so a move
  // w_old -> w_new multiplies the scaled view by w_old / w_new.
  sh.tracker.rescale_dynamic(sh.weight / w_new);
  sh.controller.set_contribution_scale(1.0 / w_new);
  sh.weight = w_new;
  // frap:contract(order: relaxed; sync_guard_locked republishes the guard
  // right after, which is what makes the new weight authoritative)
  sh.inv_weight.store(1.0 / w_new, std::memory_order_relaxed);
  // The scaled committed LHS just moved; republish the guard immediately so
  // the lock-free view is never optimistic about the new weight.
  sync_guard_locked(sh, 0);
}

core::AdmissionDecision ShardedAdmissionService::fallback(
    std::size_t origin, const core::TaskSpec& spec, Time now) {
  // Lock order: global_mu_, then every shard mutex in index order. Hot-path
  // holders only ever hold their own shard's mutex and never block on
  // global_mu_, so the fixed order cannot deadlock.
  std::scoped_lock g(global_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sh : shards_) locks.emplace_back(sh->mu);

  const Time eff = advance_all_locked(now);
  AdmissionDecision d = fallback_decide_locked(origin, spec, now, eff);
  // advance_all may have drained expiries and the decide pass may have
  // admitted / rescaled; republish every guard before dropping the locks.
  sync_all_guards_locked();
  if (observer_ != nullptr) {
    // The admitting shard's sink already recorded the local decision (with
    // its pre-override reason); the service-level span carries the FINAL
    // reason so the two can be correlated by task_id.
    std::uint16_t touched = 0;
    for (double c : spec.contributions()) {
      if (c > 0) ++touched;
    }
    observer_->service_sink().record_span(obs::SpanKind::kFallback, d,
                                          spec.id, touched);
  }
  return d;
}

core::AdmissionDecision ShardedAdmissionService::fallback_decide_locked(
    std::size_t origin, const core::TaskSpec& spec, Time now, Time eff) {
  const std::vector<std::size_t> order = shards_by_headroom_locked();

  // Pass 1: some shard may already have local headroom for the task (the
  // home shard only sees its own slice).
  for (std::size_t k : order) {
    Shard& sh = *shards_[k];
    if (!sh.controller.test(spec)) continue;
    AdmissionDecision d = sh.controller.try_admit(spec, eff);
    FRAP_ASSERT(d.admitted);  // test() and try_admit() share the predicate
    d.reason = AdmissionDecision::Reason::kQuotaFallback;
    sh.fallback_admits.increment();
    return d;
  }

  // Pass 2: steal unused quota — shrink every donor to its minimum feasible
  // weight and grow one receiver until the task fits in its slice.
  const std::vector<double> add = spec.contributions();
  std::vector<double> minw(shards_.size());
  double total_minw = 0;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    minw[k] = min_feasible_weight_locked(*shards_[k]);
    total_minw += minw[k];
  }
  for (std::size_t r : order) {
    const double w_r = 1.0 - (total_minw - minw[r]);
    if (w_r < minw[r]) continue;  // donors leave no room to grow
    if (!fits_at_weight_locked(*shards_[r], add, w_r)) continue;

    std::vector<double> w = minw;
    w[r] = w_r;
    quota_.set_weights(w);  // validates floors and Σ = 1
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      apply_weight_locked(*shards_[k], w[k]);
    }
    AdmissionDecision d = shards_[r]->controller.try_admit(spec, eff);
    if (d.admitted) {
      d.reason = AdmissionDecision::Reason::kQuotaFallback;
      shards_[r]->fallback_admits.increment();
      return d;
    }
    // The arithmetic precheck and the controller's cached view disagreed at
    // the boundary (FP); the rescale is harmless — fall through to reject.
    break;
  }

  // Rejected even globally. Report the TRUE global LHS pair so operators
  // see how far outside the region the task actually was.
  AdmissionDecision d;
  d.admitted = false;
  d.reason = AdmissionDecision::Reason::kQuotaFallbackRejected;
  d.bound = region_.bound();
  d.arrival = now;
  d.decided_at = eff;
  std::vector<double> u = true_utilizations_locked();
  d.lhs_before = region_.lhs(u);
  for (std::size_t j = 0; j < u.size(); ++j) u[j] += add[j];
  d.lhs_with_task = region_.lhs(u);
  shards_[origin]->fallback_rejects.increment();
  return d;
}

void ShardedAdmissionService::rebalance(Time now) {
  std::scoped_lock g(global_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sh : shards_) locks.emplace_back(sh->mu);
  advance_all_locked(now);
  sync_all_guards_locked();

  // Demand proxy: each shard's true utilization mass. Floors: whatever
  // weight its current load needs to stay feasible.
  std::vector<double> demand(shards_.size(), 0.0);
  std::vector<double> floor(shards_.size(), 0.0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& sh = *shards_[k];
    for (std::size_t j = 0; j < region_.num_stages(); ++j) {
      demand[k] += sh.weight * sh.tracker.utilization(j);
    }
    floor[k] = min_feasible_weight_locked(sh);
  }

  std::vector<double> w = QuotaPlan::proportional(demand, floor);
  double max_move = 0;
  for (std::size_t k = 0; k < w.size(); ++k) {
    max_move = std::max(max_move, std::fabs(w[k] - shards_[k]->weight));
  }
  if (max_move < kRebalanceDeadband) return;

  quota_.set_weights(w);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    apply_weight_locked(*shards_[k], w[k]);
  }
  rebalances_.increment();
  if (observer_ != nullptr) {
    // Rebalance span: no task, but the global LHS at the instant the
    // weights moved (lhs_before == lhs_with_task) anchors the event in the
    // region's trajectory.
    AdmissionDecision d;
    d.admitted = true;
    d.reason = AdmissionDecision::Reason::kAdmitted;
    d.bound = region_.bound();
    d.lhs_before = region_.lhs(true_utilizations_locked());
    d.lhs_with_task = d.lhs_before;
    d.arrival = now;
    d.decided_at = now;
    observer_->service_sink().record_span(obs::SpanKind::kRebalance, d, 0, 0);
  }
}

void ShardedAdmissionService::maybe_auto_rebalance(Time now) {
  const std::uint64_t n =
      // frap:contract(order: relaxed tally; only the modular count matters
      // and it needs nothing beyond atomicity)
      decisions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.rebalance_interval == 0) return;
  if (n % cfg_.rebalance_interval != 0) return;
  rebalance(now);
}

ServiceStats ShardedAdmissionService::stats() const {
  ServiceStats s;
  // frap:contract(order: relaxed; stats may lag in-flight decisions)
  s.decisions = decisions_.load(std::memory_order_relaxed);
  s.rebalances = rebalances_.value();
  s.shards.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardStats out;
    out.admits = sh->admits.value();
    out.rejects = sh->rejects.value();
    out.fallback_admits = sh->fallback_admits.value();
    out.fallback_rejects = sh->fallback_rejects.value();
    out.atomic_admits = sh->atomic_admits.value();
    out.atomic_rejects = sh->atomic_rejects.value();
    out.atomic_inconclusive = sh->atomic_inconclusive.value();
    // Decisions settled lock-free never touched decisions_; fold them in so
    // s.decisions counts every try_admit whichever path decided it.
    s.decisions += out.atomic_admits + out.atomic_rejects;
    {
      std::scoped_lock lk(sh->mu);
      out.weight = sh->weight;
      out.live_tasks = sh->tracker.live_tasks();
    }
    s.shards.push_back(out);
  }
  return s;
}

void ShardedAdmissionService::enable_tracing(const obs::SinkConfig& sink_cfg,
                                             const obs::Clock* clock) {
  std::scoped_lock g(global_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sh : shards_) locks.emplace_back(sh->mu);
  FRAP_EXPECTS(observer_ == nullptr);
  observer_ = std::make_unique<obs::Observer>(shards_.size(), sink_cfg, clock);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->controller.set_sink(&observer_->sink(k));
  }
  // Published last: once visible, the fast path stops issuing lock-free
  // rejects so every decision reaches a recording sink.
  // frap:contract(order: release publish of the sink wiring above; pairs
  // with the fast path's tracing_ load so no traced decision misses a sink)
  tracing_.store(true, std::memory_order_release);
}

obs::Observer& ShardedAdmissionService::observer() {
  FRAP_EXPECTS(observer_ != nullptr);
  return *observer_;
}

obs::MetricsSnapshot ShardedAdmissionService::obs_snapshot() const {
  FRAP_EXPECTS(observer_ != nullptr);
  std::scoped_lock g(global_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sh : shards_) locks.emplace_back(sh->mu);
  return observer_->snapshot();
}

std::vector<double> ShardedAdmissionService::global_utilizations(Time now) {
  std::scoped_lock g(global_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sh : shards_) locks.emplace_back(sh->mu);
  advance_all_locked(now);
  sync_all_guards_locked();
  return true_utilizations_locked();
}

}  // namespace frap::service
