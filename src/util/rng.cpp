#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace frap::util {

double Rng::uniform01() {
  // 53 random bits -> double in [0, 1) with full mantissa coverage.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FRAP_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FRAP_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(engine_());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t x = engine_();
  while (x >= limit) x = engine_();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::exponential(double mean) {
  FRAP_EXPECTS(mean > 0);
  // Inversion: -mean * ln(1 - u); 1 - uniform01() is in (0, 1].
  return -mean * std::log(1.0 - uniform01());
}

bool Rng::bernoulli(double p) {
  FRAP_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

Rng Rng::split() {
  // Mix two draws through splitmix64 so child streams do not overlap the
  // parent's output sequence in any obvious way.
  auto mix = [](std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return Rng(mix(engine_()) ^ mix(engine_()));
}

}  // namespace frap::util
