// Precondition / postcondition / invariant checking in the spirit of the
// C++ Core Guidelines' Expects()/Ensures() (I.6, I.8). Violations indicate
// programming errors inside frap or misuse of its API, so they abort with a
// diagnostic rather than throwing: callers are never expected to recover.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace frap::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "frap: %s violation: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace frap::util

// Precondition on a public API entry point.
#define FRAP_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::frap::util::contract_failure("precondition", #cond, __FILE__, \
                                           __LINE__))

// Postcondition / result sanity check.
#define FRAP_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::frap::util::contract_failure("postcondition", #cond, __FILE__, \
                                           __LINE__))

// Internal invariant that must hold between calls.
#define FRAP_ASSERT(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::frap::util::contract_failure("invariant", #cond, __FILE__,  \
                                           __LINE__))
