// Simulation time types and unit helpers.
//
// Simulated time is a double measured in seconds. A double mantissa gives
// sub-nanosecond resolution over multi-year horizons, which is far beyond
// what the experiments need, and keeps the arithmetic in the analytical
// expressions (which are real-valued anyway) free of conversions.
#pragma once

namespace frap {

using Time = double;      // absolute simulated time, seconds
using Duration = double;  // time difference, seconds

inline constexpr Time kTimeZero = 0.0;

// Unit constructors: write `20 * kMilli` for 20 ms.
inline constexpr Duration kSec = 1.0;
inline constexpr Duration kMilli = 1e-3;
inline constexpr Duration kMicro = 1e-6;

namespace util {

// True when |a - b| is within an absolute tolerance. The simulator produces
// times by summing durations, so equality comparisons in tests must allow
// rounding slack.
inline constexpr bool time_close(Time a, Time b, Duration tol = 1e-9) {
  const Duration d = a - b;
  return (d < 0 ? -d : d) <= tol;
}

}  // namespace util
}  // namespace frap
