// Deterministic random number generation for workload synthesis.
//
// Every experiment run owns one Rng seeded explicitly, so results are
// reproducible bit-for-bit across runs and platforms (mt19937_64 and our own
// inversion-sampling guarantee identical streams everywhere, unlike
// std::*_distribution whose algorithms are implementation-defined).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace frap::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Exponential with the given mean (= 1/rate). Requires mean > 0.
  // Sampled by inversion for cross-platform determinism.
  double exponential(double mean);

  // Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (for splitting one experiment seed
  // into per-component streams without correlation).
  Rng split();

  std::uint64_t next_u64() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace frap::util
