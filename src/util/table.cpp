#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "util/check.h"

namespace frap::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FRAP_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FRAP_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace frap::util
