// Column-aligned plain-text tables, used by the benchmark harness to print
// the paper's figures/tables as terminal output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace frap::util {

// Usage:
//   Table t({"load %", "N=1", "N=2"});
//   t.add_row({"60", "0.58", "0.57"});
//   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace frap::util
