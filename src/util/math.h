// Small numeric helpers shared across modules.
#pragma once

#include <cmath>
#include <limits>

namespace frap::util {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Relative-or-absolute closeness test for analytical results.
inline bool almost_equal(double a, double b, double rel = 1e-9,
                         double abs = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

// Clamp helper that tolerates lo > hi inputs from floating-point noise by
// preferring lo.
inline double clamp(double x, double lo, double hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

// Arithmetic mean of a container of doubles; 0 for empty input.
template <typename C>
double mean_of(const C& c) {
  double sum = 0;
  std::size_t n = 0;
  for (double v : c) {
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace frap::util
