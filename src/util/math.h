// Small numeric helpers shared across modules.
#pragma once

#include <cmath>
#include <limits>

namespace frap::util {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Relative-or-absolute closeness test for analytical results.
inline bool almost_equal(double a, double b, double rel = 1e-9,
                         double abs = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

// Saturation-safe division for nonnegative numerators over positive
// denominators (deadlines, headroom terms): a zero or negative denominator
// yields +infinity — the "saturated, reject" sentinel every admission path
// already handles — instead of NaN, a signed infinity, or garbage the
// caller would then trust. frap-lint rule R1 (unsafe-division) routes all
// divisions by deadlines through here; see docs/static_analysis.md.
inline double safe_div(double num, double denom) {
  return denom > 0 ? num / denom : kInf;
}

// 1/x with the same contract as safe_div.
inline double safe_inv(double x) { return safe_div(1.0, x); }

// Clamp helper that tolerates lo > hi inputs from floating-point noise by
// preferring lo.
inline double clamp(double x, double lo, double hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

// Arithmetic mean of a container of doubles; 0 for empty input.
template <typename C>
double mean_of(const C& c) {
  double sum = 0;
  std::size_t n = 0;
  for (double v : c) {
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace frap::util
