// Flat open-addressing hash map from 64-bit ids to 32-bit indices.
//
// Purpose-built for the tracker's task-id -> slot-index lookup on the
// allocation-free admission path: linear probing over one contiguous bucket
// array, backward-shift deletion (no tombstones, so a long-running
// steady-state insert/erase cycle never degrades probe lengths or forces a
// rehash), and growth only when the live count crosses the load threshold —
// in steady state the table stays warm and insert/find/erase are
// allocation-free. Values are caller-defined indices; the map never
// interprets them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace frap::util {

class IdMap {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  IdMap() = default;

  // Index stored for `key`, or kNotFound.
  [[nodiscard]] std::uint32_t find(std::uint64_t key) const {
    if (size_ == 0) return kNotFound;
    std::size_t i = probe_start(key);
    while (buckets_[i].used) {
      if (buckets_[i].key == key) return buckets_[i].value;
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  // Inserts key -> value. The key must be absent; the value must not be
  // kNotFound (it is the miss sentinel).
  void insert(std::uint64_t key, std::uint32_t value) {
    FRAP_EXPECTS(value != kNotFound);
    if ((size_ + 1) * 10 > capacity() * 7) grow();
    std::size_t i = probe_start(key);
    while (buckets_[i].used) {
      // Key absence is a caller precondition; the probe walk checks it for
      // free, so callers need not pay a separate find() first.
      FRAP_EXPECTS(buckets_[i].key != key);
      i = (i + 1) & mask_;
    }
    buckets_[i] = Bucket{key, value, true};
    ++size_;
  }

  // Removes the key; returns false when absent. Backward-shift deletion
  // keeps every remaining entry reachable with no tombstone left behind.
  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    std::size_t i = probe_start(key);
    while (buckets_[i].used && buckets_[i].key != key) i = (i + 1) & mask_;
    if (!buckets_[i].used) return false;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!buckets_[j].used) break;
      const std::size_t home = probe_start(buckets_[j].key);
      // The entry at j may fill the hole at i only if its probe path does
      // not start strictly after i (cyclically): home must not lie in
      // (i, j].
      const bool home_in_gap =
          i <= j ? (home > i && home <= j) : (home > i || home <= j);
      if (!home_in_gap) {
        buckets_[i] = buckets_[j];
        i = j;
      }
    }
    buckets_[i].used = false;
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  // Pre-sizes the table for `n` live entries without rehashing later.
  void reserve(std::size_t n) {
    std::size_t cap = capacity() == 0 ? kInitialCapacity : capacity();
    while (n * 10 > cap * 7) cap *= 2;
    if (cap != capacity()) rehash(cap);
  }

 private:
  struct Bucket {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
    bool used = false;
  };

  static constexpr std::size_t kInitialCapacity = 16;

  [[nodiscard]] std::size_t capacity() const { return buckets_.size(); }

  // splitmix64 finalizer: full-avalanche mixing so sequential task ids do
  // not cluster in the linear probe.
  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const {
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & mask_;
  }

  void grow() {
    rehash(capacity() == 0 ? kInitialCapacity : capacity() * 2);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_capacity, Bucket{});
    mask_ = new_capacity - 1;
    for (const Bucket& b : old) {
      if (!b.used) continue;
      std::size_t i = probe_start(b.key);
      while (buckets_[i].used) i = (i + 1) & mask_;
      buckets_[i] = b;
    }
  }

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace frap::util
