// Decode-and-admit: feeding validated wire frames into the admission
// machinery with zero steady-state allocation.
//
// An IngestSession owns the reusable scratch that bridges zero-copy
// WireArrival views to the TaskSpec-shaped Admitter API: one inline-record
// scratch spec (stages sized once, only previously-touched entries cleared
// between records), one prebuilt template spec per registered task class
// (id/deadline/importance patched per arrival), and a burst buffer of
// assembled specs for BatchAdmissionController. After the first frame of a
// given size every decode-and-admit cycle performs ZERO heap allocations —
// pinned by the operator-new hook in tests/alloc_steady_state_test.cpp.
//
// Untrusted input never aborts: replay/admit/admit_burst re-check the two
// properties WireView::open() cannot know (frame width vs this session's
// width; class ids vs this session's table) and return a typed error in
// IngestStats instead of touching the controller.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/admission.h"
#include "core/admission_decision.h"
#include "core/task.h"
#include "ingest/wire_decoder.h"
#include "ingest/wire_format.h"
#include "service/sharded_admission.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace frap::ingest {

// Out-of-band task-class registry for RecordKind::kClass records: class id
// k (dense, in add() order) maps to a full-width per-stage demand template.
class TaskClassTable {
 public:
  TaskClassTable() = default;

  // Registers a class; `stages` must be one entry per pipeline stage of
  // the sessions this table will serve. Returns the class id.
  std::uint16_t add(std::vector<core::StageDemand> stages);

  [[nodiscard]] std::size_t size() const { return classes_.size(); }
  [[nodiscard]] const std::vector<core::StageDemand>& stages_of(
      std::uint16_t class_id) const;

 private:
  std::vector<std::vector<core::StageDemand>> classes_;
};

// Per-frame ingest outcome. `error` != kNone means the frame was rejected
// whole (width/class mismatch) and no record reached the controller.
struct IngestStats {
  WireError error = WireError::kNone;
  std::uint64_t records = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;

  [[nodiscard]] bool ok() const { return error == WireError::kNone; }
};

class IngestSession {
 public:
  explicit IngestSession(std::size_t num_stages,
                         TaskClassTable classes = TaskClassTable{});

  [[nodiscard]] std::size_t num_stages() const { return num_stages_; }
  [[nodiscard]] const TaskClassTable& classes() const { return classes_; }

  // The two frame-level properties open() cannot validate: width match and
  // class-id resolution. All entry points below call this and surface the
  // typed error through IngestStats.
  [[nodiscard]] WireParse check(const WireView& view) const;

  // Materializes one decoded arrival as a TaskSpec backed by this
  // session's reusable scratch. The reference is invalidated by the next
  // assemble()/replay()/admit() call. Requires a record from a checked
  // frame (class ids are asserted, not re-validated).
  // frap:contract(hotpath)
  [[nodiscard]] const core::TaskSpec& assemble(const WireArrival& a);

  // Sequential replay through a single controller: for each record the
  // simulator is advanced to the arrival instant and the spec admitted
  // exactly as an in-process caller would — decisions are bit-identical to
  // the run the frame was captured from. `rebase` shifts every arrival by
  // (rebase - view.base_time()) for load loops that replay one frame
  // repeatedly; exact replay leaves it unset. When `decisions` is given,
  // one decision per record is appended.
  IngestStats replay(const WireView& view, core::AdmissionController& ctl,
                     sim::Simulator& sim,
                     std::vector<core::AdmissionDecision>* decisions = nullptr,
                     std::optional<Time> rebase = std::nullopt);

  // Decides the whole frame as one burst at the controller's current
  // instant (arrival instants on the wire are ignored; burst semantics).
  IngestStats admit_burst(
      const WireView& view, core::BatchAdmissionController& batch,
      std::vector<core::AdmissionDecision>* decisions = nullptr);

  // Decodes and admits against the sharded service, presenting each
  // record's arrival instant (optionally rebased) as `now`.
  IngestStats admit(const WireView& view,
                    service::ShardedAdmissionService& svc,
                    std::vector<core::AdmissionDecision>* decisions = nullptr,
                    std::optional<Time> rebase = std::nullopt);

 private:
  // Writes the full-width spec for `a` into `out` (burst slots).
  // frap:contract(hotpath)
  void assemble_into(core::TaskSpec& out, const WireArrival& a) const;

  std::size_t num_stages_;
  TaskClassTable classes_;
  core::TaskSpec spec_;                      // inline-record scratch
  std::vector<std::uint32_t> touched_;       // stages set in spec_
  std::vector<core::TaskSpec> class_specs_;  // per-class templates
  std::vector<core::TaskSpec> burst_;        // assembled burst scratch
};

}  // namespace frap::ingest
