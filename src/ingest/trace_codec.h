// Bridges the binary wire format to the existing trace / stream tooling.
//
// encode_trace / decode_trace convert between workload::ArrivalTrace (the
// line-oriented text capture from PR 2) and a wire frame; a trace round
// trip preserves every bit of every time, deadline, importance, and demand
// (arrivals are stored absolute on the wire). write_frame / read_frame move
// length-prefixed frames through iostreams so captures persist to files —
// the frame is stored verbatim, preceded by a u64 little-endian byte count,
// and read back into a caller-owned buffer that the decoder then views
// without copying again.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "ingest/ingest_session.h"
#include "ingest/wire_decoder.h"
#include "ingest/wire_encoder.h"
#include "workload/replay.h"

namespace frap::ingest {

// Serializes a non-empty trace into `enc` (which must match the trace
// width; it is reset to the first arrival's instant) and returns the frame.
std::span<const std::byte> encode_trace(const workload::ArrivalTrace& trace,
                                        WireEncoder& enc);

// Decodes a frame into `*out` (replaced). Class records are expanded
// through `classes` when given; without a table a class record fails with
// kUnknownClass. Returns the parse outcome; on failure `*out` is empty.
WireParse decode_trace(std::span<const std::byte> frame,
                       workload::ArrivalTrace* out,
                       const TaskClassTable* classes = nullptr);

// Length-prefixed frame I/O. write_frame returns false on a stream error;
// read_frame returns false on error or clean EOF (buf is cleared), so a
// file of concatenated frames is consumed by calling it until false.
bool write_frame(std::ostream& os, std::span<const std::byte> frame);
bool read_frame(std::istream& is, std::vector<std::byte>* buf);

}  // namespace frap::ingest
