// Wire-frame encoder: the capture seam's serializer.
//
// Appends packed arrival records (canonical form: sparse, strictly
// ascending stages, only demands > 0) into an internal byte buffer and
// patches the record count on finish. The buffer is reused across frames
// via reset(), so a steady encode -> publish cycle allocates only until the
// buffer reaches its high-water mark.
//
// Preconditions (FRAP_EXPECTS) mirror exactly what WireView::open()
// validates, so every frame the encoder produces decodes cleanly and
// re-encoding a decoded frame is byte-identical
// (tests/wire_format_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/task.h"
#include "ingest/wire_format.h"
#include "util/time.h"

namespace frap::ingest {

class WireEncoder {
 public:
  // Frames of `num_stages`-wide tasks; `base_time` is the frame epoch
  // (finite, <= every arrival added — arrivals themselves are stored
  // absolute so they round-trip exactly).
  explicit WireEncoder(std::size_t num_stages, Time base_time = kTimeZero);

  // Starts a new frame at `base_time`, reusing the buffer.
  void reset(Time base_time);

  // Appends an inline record: only stages with compute > 0 are serialized
  // (at least one is required). Arrivals must be non-decreasing and
  // >= base_time; the spec must be valid with this encoder's stage count.
  void add(Time arrival, const core::TaskSpec& spec);

  // Appends a class record referencing a TaskClassTable entry.
  void add_class(Time arrival, std::uint64_t id, Duration deadline,
                 double importance, std::uint16_t class_id);

  // Patches the header and returns the finished frame (valid until the
  // next reset()/add()). Requires at least one record.
  [[nodiscard]] std::span<const std::byte> frame();

  [[nodiscard]] std::size_t num_stages() const { return num_stages_; }
  [[nodiscard]] std::uint32_t record_count() const { return count_; }
  [[nodiscard]] Time base_time() const { return base_time_; }

 private:
  // Appends the fixed 36-byte record prefix.
  void append_prefix(Time arrival, std::uint64_t id, Duration deadline,
                     double importance, RecordKind kind, std::uint16_t n);

  std::vector<std::byte> buf_;
  std::size_t num_stages_;
  std::uint32_t count_ = 0;
  Time base_time_;
  Time last_arrival_;
};

}  // namespace frap::ingest
