#include "ingest/trace_codec.h"

#include <istream>
#include <ostream>

#include "ingest/ingest_session.h"
#include "util/check.h"

namespace frap::ingest {

std::span<const std::byte> encode_trace(const workload::ArrivalTrace& trace,
                                        WireEncoder& enc) {
  FRAP_EXPECTS(!trace.empty());
  FRAP_EXPECTS(enc.num_stages() == trace.num_stages());
  enc.reset(trace[0].time);
  for (const auto& r : trace.records()) enc.add(r.time, r.task);
  return enc.frame();
}

WireParse decode_trace(std::span<const std::byte> frame,
                       workload::ArrivalTrace* out,
                       const TaskClassTable* classes) {
  FRAP_EXPECTS(out != nullptr);
  *out = workload::ArrivalTrace{};
  WireParse parse;
  const WireView view = WireView::open(frame, &parse);
  if (!parse.ok()) return parse;

  workload::ArrivalTrace trace(view.num_stages());
  core::TaskSpec spec;
  spec.stages.resize(view.num_stages());
  WireArrival a;
  for (auto cur = view.cursor(); cur.next(a);) {
    spec.id = a.id();
    spec.deadline = a.deadline();
    spec.importance = a.importance();
    if (a.kind() == RecordKind::kClass) {
      if (classes == nullptr || a.class_id() >= classes->size())
        return WireParse{WireError::kUnknownClass, 0};
      const auto& stages = classes->stages_of(a.class_id());
      if (stages.size() != view.num_stages())
        return WireParse{WireError::kStageMismatch, 6};
      spec.stages = stages;
    } else {
      for (auto& s : spec.stages) s.compute = 0;
      const std::uint16_t pairs = a.pair_count();
      for (std::uint16_t i = 0; i < pairs; ++i)
        spec.stages[a.stage(i)].compute = a.demand(i);
    }
    trace.append(a.arrival(), spec);
  }
  *out = std::move(trace);
  return parse;
}

bool write_frame(std::ostream& os, std::span<const std::byte> frame) {
  std::byte len[8];
  store_u64(len, static_cast<std::uint64_t>(frame.size()));
  os.write(reinterpret_cast<const char*>(len), sizeof(len));
  os.write(reinterpret_cast<const char*>(frame.data()),
           static_cast<std::streamsize>(frame.size()));
  return static_cast<bool>(os);
}

bool read_frame(std::istream& is, std::vector<std::byte>* buf) {
  FRAP_EXPECTS(buf != nullptr);
  buf->clear();
  std::byte len[8];
  if (!is.read(reinterpret_cast<char*>(len), sizeof(len))) return false;
  const std::uint64_t size = load_u64(len);
  // Cap far above any real frame so a corrupt length cannot trigger a
  // pathological allocation before the decoder ever sees the bytes.
  constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 32;
  if (size < kWireHeaderSize || size > kMaxFrameBytes) return false;
  buf->resize(static_cast<std::size_t>(size));
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(buf->data()),
              static_cast<std::streamsize>(buf->size())));
}

}  // namespace frap::ingest
