// FRAP binary arrival wire format v1 (docs/wire_format.md).
//
// A FRAME is one contiguous byte buffer: a fixed 24-byte header followed by
// `record_count` packed arrival RECORDS. All integers are little-endian;
// floating-point fields are IEEE-754 binary64 copied bit-for-bit, so an
// encode -> decode round trip reproduces every deadline, demand, and
// arrival instant EXACTLY and replayed admission decisions are bit-identical
// to the in-process run (tests/ingest_replay_test.cpp).
//
//   Header (24 bytes)                  Record (36 + 12*k bytes)
//   +0  u32  magic   "FRAP"            +0  u64  id
//   +4  u16  version (= 1)             +8  f64  relative deadline  (s)
//   +6  u16  num_stages                +16 f64  importance
//   +8  u32  record_count              +24 f64  absolute arrival   (s)
//   +12 u32  reserved (= 0)                     (>= header base_time)
//   +16 f64  base_time (s)             +32 u8   kind (0 inline, 1 class)
//                                      +33 u8   reserved (= 0)
//                                      +34 u16  n: inline pair count k,
//                                               or task-class id
//                                      +36 k * { u32 stage, f64 demand }
//                                               (inline records only)
//
// Inline records carry only the stages the task actually touches (demand
// > 0), in strictly ascending stage order — the canonical form, so
// re-encoding a decoded frame is byte-identical. Class records reference a
// task-class table registered out of band (ingest/ingest_session.h); the
// wire carries per-arrival id/deadline/importance while the per-stage
// demands come from the table.
//
// Arrivals are stored ABSOLUTE, not as offsets from base_time: a replayed
// instant must equal the captured one bit-for-bit, and base + (t - base)
// does not round-trip in binary64. base_time is the frame's epoch metadata
// (<= the first arrival); rebase-style consumers may shift by it, exact
// replay never does arithmetic on arrivals at all.
//
// Safety: WireView::open() validates structure AND values (bounds, version,
// finiteness, monotone arrivals) in ONE linear pass per frame; iteration
// afterwards is unchecked-by-construction and allocation-free. Malformed
// input of any shape yields a typed WireError, never UB
// (tests/wire_format_test.cpp fuzzes truncations and field corruptions
// under ASan/UBSan).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace frap::ingest {

// The decoder reads multi-byte fields with memcpy at unaligned offsets and
// relies on the host being little-endian (every supported target is; a
// big-endian port would byte-swap in load_*/store_*).
static_assert(std::endian::native == std::endian::little,
              "frap wire format requires a little-endian host");

inline constexpr std::uint32_t kWireMagic = 0x50415246u;  // "FRAP" in LE
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 24;
inline constexpr std::size_t kWireRecordFixedSize = 36;
inline constexpr std::size_t kWirePairSize = 12;

enum class RecordKind : std::uint8_t {
  kInline = 0,  // per-task (stage, demand) pairs follow
  kClass = 1,   // demands come from a registered TaskClassTable entry
};

// Typed decode failures. Everything a hostile or truncated buffer can be
// wrong about maps to one of these; the decoder never reads out of bounds
// and never aborts on wire data.
enum class WireError : std::uint8_t {
  kNone = 0,
  kTruncatedHeader,    // buffer shorter than the fixed header
  kBadMagic,           // first four bytes are not "FRAP"
  kBadVersion,         // version != kWireVersion
  kZeroStages,         // num_stages == 0
  kEmptyFrame,         // record_count == 0
  kBadReserved,        // a reserved field is nonzero
  kTruncatedRecord,    // a record (or its pair block) overruns the buffer
  kBadRecordKind,      // kind is neither inline nor class
  kBadPairCount,       // inline pair count of 0 or > num_stages
  kStageOutOfRange,    // pair names a stage >= num_stages
  kUnorderedStages,    // pairs not in strictly ascending stage order
  kBadValue,           // non-finite / non-positive deadline or demand,
                       // non-finite importance or base_time, non-finite
                       // arrival or arrival before base_time
  kNonMonotoneArrival, // arrival offsets decrease across records
  kTrailingBytes,      // bytes left over after the last record
  kUnknownClass,       // class record id not in the session's table
  kStageMismatch,      // frame width != the consuming session's width
};

// Stable diagnostic name ("bad-magic", ...).
const char* wire_error_name(WireError e);

// --- unaligned little-endian field access ---------------------------------
//
// memcpy into a local is the sanctioned way to read unaligned data; every
// compiler lowers these to single loads/stores on the targets we build for.

// frap:contract(hotpath)
inline std::uint16_t load_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// frap:contract(hotpath)
inline std::uint32_t load_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// frap:contract(hotpath)
inline std::uint64_t load_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// frap:contract(hotpath)
inline double load_f64(const std::byte* p) {
  double v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store_u16(std::byte* p, std::uint16_t v) {
  std::memcpy(p, &v, sizeof v);
}

inline void store_u32(std::byte* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof v);
}

inline void store_u64(std::byte* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}

inline void store_f64(std::byte* p, double v) {
  std::memcpy(p, &v, sizeof v);
}

}  // namespace frap::ingest
