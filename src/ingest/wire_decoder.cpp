#include "ingest/wire_decoder.h"

#include <cmath>

namespace frap::ingest {

namespace {

WireParse fail(WireError e, std::size_t offset) { return WireParse{e, offset}; }

}  // namespace

WireParse WireView::validate(std::span<const std::byte> frame) {
  const std::byte* d = frame.data();
  const std::size_t n = frame.size();

  if (n < kWireHeaderSize) return fail(WireError::kTruncatedHeader, 0);
  if (load_u32(d) != kWireMagic) return fail(WireError::kBadMagic, 0);
  if (load_u16(d + 4) != kWireVersion) return fail(WireError::kBadVersion, 4);
  const std::uint16_t stages = load_u16(d + 6);
  if (stages == 0) return fail(WireError::kZeroStages, 6);
  const std::uint32_t count = load_u32(d + 8);
  if (count == 0) return fail(WireError::kEmptyFrame, 8);
  if (load_u32(d + 12) != 0) return fail(WireError::kBadReserved, 12);
  const double base_time = load_f64(d + 16);
  if (!std::isfinite(base_time)) return fail(WireError::kBadValue, 16);

  std::size_t off = kWireHeaderSize;
  double prev_arrival = base_time;
  for (std::uint32_t r = 0; r < count; ++r) {
    const std::size_t rec = off;
    if (n - rec < kWireRecordFixedSize)
      return fail(WireError::kTruncatedRecord, rec);
    const std::byte* p = d + rec;

    const double deadline = load_f64(p + 8);
    if (!std::isfinite(deadline) || deadline <= 0)
      return fail(WireError::kBadValue, rec + 8);
    if (!std::isfinite(load_f64(p + 16)))
      return fail(WireError::kBadValue, rec + 16);
    const double arrival = load_f64(p + 24);
    if (!std::isfinite(arrival) || arrival < base_time)
      return fail(WireError::kBadValue, rec + 24);
    if (arrival < prev_arrival)
      return fail(WireError::kNonMonotoneArrival, rec + 24);
    prev_arrival = arrival;

    const std::uint8_t kind = std::to_integer<std::uint8_t>(p[32]);
    if (std::to_integer<std::uint8_t>(p[33]) != 0)
      return fail(WireError::kBadReserved, rec + 33);
    const std::uint16_t nfield = load_u16(p + 34);
    off = rec + kWireRecordFixedSize;

    if (kind == static_cast<std::uint8_t>(RecordKind::kClass)) {
      // Class-id validity is a session concern (the table is out of band);
      // structurally any id is representable.
      continue;
    }
    if (kind != static_cast<std::uint8_t>(RecordKind::kInline))
      return fail(WireError::kBadRecordKind, rec + 32);

    if (nfield == 0 || nfield > stages)
      return fail(WireError::kBadPairCount, rec + 34);
    if (n - off < static_cast<std::size_t>(nfield) * kWirePairSize)
      return fail(WireError::kTruncatedRecord, off);
    std::uint32_t prev_stage = 0;
    for (std::uint16_t i = 0; i < nfield; ++i) {
      const std::size_t pair = off + i * kWirePairSize;
      const std::uint32_t stage = load_u32(d + pair);
      if (stage >= stages) return fail(WireError::kStageOutOfRange, pair);
      if (i > 0 && stage <= prev_stage)
        return fail(WireError::kUnorderedStages, pair);
      prev_stage = stage;
      const double demand = load_f64(d + pair + 4);
      if (!std::isfinite(demand) || demand <= 0)
        return fail(WireError::kBadValue, pair + 4);
    }
    off += static_cast<std::size_t>(nfield) * kWirePairSize;
  }
  if (off != n) return fail(WireError::kTrailingBytes, off);
  return WireParse{};
}

WireView WireView::open(std::span<const std::byte> frame, WireParse* parse) {
  const WireParse p = validate(frame);
  if (parse != nullptr) *parse = p;
  if (!p.ok()) return WireView{};
  WireView v;
  v.data_ = frame.data();
  v.size_ = frame.size();
  v.num_stages_ = load_u16(frame.data() + 6);
  v.record_count_ = load_u32(frame.data() + 8);
  v.base_time_ = load_f64(frame.data() + 16);
  return v;
}

}  // namespace frap::ingest
