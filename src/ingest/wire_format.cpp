#include "ingest/wire_format.h"

namespace frap::ingest {

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kNone:
      return "ok";
    case WireError::kTruncatedHeader:
      return "truncated-header";
    case WireError::kBadMagic:
      return "bad-magic";
    case WireError::kBadVersion:
      return "bad-version";
    case WireError::kZeroStages:
      return "zero-stages";
    case WireError::kEmptyFrame:
      return "empty-frame";
    case WireError::kBadReserved:
      return "bad-reserved";
    case WireError::kTruncatedRecord:
      return "truncated-record";
    case WireError::kBadRecordKind:
      return "bad-record-kind";
    case WireError::kBadPairCount:
      return "bad-pair-count";
    case WireError::kStageOutOfRange:
      return "stage-out-of-range";
    case WireError::kUnorderedStages:
      return "unordered-stages";
    case WireError::kBadValue:
      return "bad-value";
    case WireError::kNonMonotoneArrival:
      return "non-monotone-arrival";
    case WireError::kTrailingBytes:
      return "trailing-bytes";
    case WireError::kUnknownClass:
      return "unknown-class";
    case WireError::kStageMismatch:
      return "stage-mismatch";
  }
  return "unknown";
}

}  // namespace frap::ingest
