#include "ingest/ingest_session.h"

#include <utility>

#include "util/check.h"

namespace frap::ingest {

std::uint16_t TaskClassTable::add(std::vector<core::StageDemand> stages) {
  FRAP_EXPECTS(!stages.empty());
  FRAP_EXPECTS(classes_.size() < std::size_t{65536});
  classes_.push_back(std::move(stages));
  return static_cast<std::uint16_t>(classes_.size() - 1);
}

const std::vector<core::StageDemand>& TaskClassTable::stages_of(
    std::uint16_t class_id) const {
  FRAP_EXPECTS(class_id < classes_.size());
  return classes_[class_id];
}

IngestSession::IngestSession(std::size_t num_stages, TaskClassTable classes)
    : num_stages_(num_stages), classes_(std::move(classes)) {
  FRAP_EXPECTS(num_stages_ > 0);
  spec_.stages.resize(num_stages_);
  touched_.reserve(num_stages_);
  class_specs_.reserve(classes_.size());
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    const auto& stages = classes_.stages_of(static_cast<std::uint16_t>(k));
    FRAP_EXPECTS(stages.size() == num_stages_);
    core::TaskSpec s;
    s.stages = stages;
    class_specs_.push_back(std::move(s));
  }
}

WireParse IngestSession::check(const WireView& view) const {
  FRAP_EXPECTS(view.valid());
  if (view.num_stages() != num_stages_)
    return WireParse{WireError::kStageMismatch, 6};
  WireArrival a;
  for (auto cur = view.cursor(); cur.next(a);) {
    if (a.kind() == RecordKind::kClass && a.class_id() >= classes_.size())
      return WireParse{WireError::kUnknownClass, 0};
  }
  return WireParse{};
}

// frap:contract(hotpath)
const core::TaskSpec& IngestSession::assemble(const WireArrival& a) {
  if (a.kind() == RecordKind::kClass) {
    core::TaskSpec& s = class_specs_[a.class_id()];
    s.id = a.id();
    s.deadline = a.deadline();
    s.importance = a.importance();
    return s;
  }
  for (const std::uint32_t j : touched_) spec_.stages[j].compute = 0;
  touched_.clear();
  spec_.id = a.id();
  spec_.deadline = a.deadline();
  spec_.importance = a.importance();
  const std::uint16_t pairs = a.pair_count();
  for (std::uint16_t i = 0; i < pairs; ++i) {
    const std::uint32_t j = a.stage(i);
    spec_.stages[j].compute = a.demand(i);
    touched_.push_back(j);
  }
  return spec_;
}

// frap:contract(hotpath)
void IngestSession::assemble_into(core::TaskSpec& out,
                                  const WireArrival& a) const {
  FRAP_ASSERT(out.stages.size() == num_stages_);
  out.id = a.id();
  out.deadline = a.deadline();
  out.importance = a.importance();
  if (a.kind() == RecordKind::kClass) {
    const auto& stages = classes_.stages_of(a.class_id());
    for (std::size_t j = 0; j < num_stages_; ++j) out.stages[j] = stages[j];
    return;
  }
  for (auto& s : out.stages) s.compute = 0;
  const std::uint16_t pairs = a.pair_count();
  for (std::uint16_t i = 0; i < pairs; ++i)
    out.stages[a.stage(i)].compute = a.demand(i);
}

IngestStats IngestSession::replay(
    const WireView& view, core::AdmissionController& ctl, sim::Simulator& sim,
    std::vector<core::AdmissionDecision>* decisions,
    std::optional<Time> rebase) {
  IngestStats st;
  if (const WireParse p = check(view); !p.ok()) {
    st.error = p.error;
    return st;
  }
  const Duration shift = rebase ? *rebase - view.base_time() : 0.0;
  WireArrival a;
  for (auto cur = view.cursor(); cur.next(a);) {
    const Time t = rebase ? a.arrival() + shift : a.arrival();
    sim.run_until(t);
    const core::AdmissionDecision d = ctl.try_admit(assemble(a), t);
    ++st.records;
    d.admitted ? ++st.admitted : ++st.rejected;
    if (decisions != nullptr) decisions->push_back(d);
  }
  return st;
}

IngestStats IngestSession::admit_burst(
    const WireView& view, core::BatchAdmissionController& batch,
    std::vector<core::AdmissionDecision>* decisions) {
  IngestStats st;
  if (const WireParse p = check(view); !p.ok()) {
    st.error = p.error;
    return st;
  }
  if (burst_.size() < view.record_count()) {
    const std::size_t old = burst_.size();
    burst_.resize(view.record_count());
    for (std::size_t i = old; i < burst_.size(); ++i)
      burst_[i].stages.resize(num_stages_);
  }
  std::size_t i = 0;
  WireArrival a;
  for (auto cur = view.cursor(); cur.next(a);) assemble_into(burst_[i++], a);
  const auto& ds = batch.try_admit_burst(
      std::span<const core::TaskSpec>(burst_.data(), i));
  for (const auto& d : ds) {
    ++st.records;
    d.admitted ? ++st.admitted : ++st.rejected;
    if (decisions != nullptr) decisions->push_back(d);
  }
  return st;
}

IngestStats IngestSession::admit(
    const WireView& view, service::ShardedAdmissionService& svc,
    std::vector<core::AdmissionDecision>* decisions,
    std::optional<Time> rebase) {
  IngestStats st;
  if (const WireParse p = check(view); !p.ok()) {
    st.error = p.error;
    return st;
  }
  const Duration shift = rebase ? *rebase - view.base_time() : 0.0;
  WireArrival a;
  for (auto cur = view.cursor(); cur.next(a);) {
    const Time t = rebase ? a.arrival() + shift : a.arrival();
    const core::AdmissionDecision d = svc.try_admit(assemble(a), t);
    ++st.records;
    d.admitted ? ++st.admitted : ++st.rejected;
    if (decisions != nullptr) decisions->push_back(d);
  }
  return st;
}

}  // namespace frap::ingest
