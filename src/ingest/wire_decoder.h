// Zero-copy wire-frame decoding: WireView + ArrivalCursor.
//
// WireView::open() runs the ONE validation pass a frame ever gets —
// structure (magic, version, bounds of every record and pair block) and
// values (finite, positive deadlines/demands, ascending stages, monotone
// arrivals) — and binds a view over the caller's bytes. Nothing is copied
// and nothing is allocated, per frame or per record: the cursor walks the
// buffer in place and hands out WireArrival VIEWS whose accessors are
// single unaligned loads at the use site. The buffer must outlive the view
// and every cursor/arrival derived from it.
//
// Iteration over a validated view is deliberately unchecked (FRAP_ASSERT
// only): the open()-time pass established every structural invariant, so
// the per-record hot path — the one the ingest-throughput floor in
// BENCH_ingest.json is measured on — pays no branches for cases that
// cannot happen. Never iterate a view that open() did not return; the
// default-constructed view is !valid() and asserts on use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "ingest/wire_format.h"
#include "util/check.h"
#include "util/time.h"

namespace frap::ingest {

// Result of the per-frame validation pass: the typed error plus the byte
// offset the decoder rejected at (0 for header-level failures).
struct WireParse {
  WireError error = WireError::kNone;
  std::size_t offset = 0;

  [[nodiscard]] bool ok() const { return error == WireError::kNone; }
};

// Zero-copy view of ONE arrival record inside a validated frame. Fields
// are decoded lazily — each accessor is one unaligned load — so consumers
// that only need the id (routing) or the arrival instant (scheduling)
// never touch the rest of the record.
class WireArrival {
 public:
  WireArrival() = default;

  // frap:contract(hotpath)
  [[nodiscard]] std::uint64_t id() const { return load_u64(rec_); }

  // frap:contract(hotpath)
  [[nodiscard]] Duration deadline() const { return load_f64(rec_ + 8); }

  // frap:contract(hotpath)
  [[nodiscard]] double importance() const { return load_f64(rec_ + 16); }

  // Absolute arrival instant, exactly as written on the wire.
  // frap:contract(hotpath)
  [[nodiscard]] Time arrival() const { return load_f64(rec_ + 24); }

  // Offset from the frame's base_time (rebase consumers only; exact replay
  // uses arrival() to avoid any arithmetic on the captured instant).
  // frap:contract(hotpath)
  [[nodiscard]] Duration arrival_offset() const {
    return load_f64(rec_ + 24) - base_;
  }

  // frap:contract(hotpath)
  [[nodiscard]] RecordKind kind() const {
    return static_cast<RecordKind>(std::to_integer<std::uint8_t>(rec_[32]));
  }

  // Task-class id (kClass records only).
  // frap:contract(hotpath)
  [[nodiscard]] std::uint16_t class_id() const {
    FRAP_ASSERT(kind() == RecordKind::kClass);
    return load_u16(rec_ + 34);
  }

  // Number of (stage, demand) pairs (0 for class records).
  // frap:contract(hotpath)
  [[nodiscard]] std::uint16_t pair_count() const {
    return kind() == RecordKind::kInline ? load_u16(rec_ + 34)
                                         : std::uint16_t{0};
  }

  // Pair i, 0 <= i < pair_count(): stage index (ascending) and demand.
  // frap:contract(hotpath)
  [[nodiscard]] std::uint32_t stage(std::size_t i) const {
    FRAP_ASSERT(i < pair_count());
    return load_u32(rec_ + kWireRecordFixedSize + i * kWirePairSize);
  }

  // frap:contract(hotpath)
  [[nodiscard]] double demand(std::size_t i) const {
    FRAP_ASSERT(i < pair_count());
    return load_f64(rec_ + kWireRecordFixedSize + i * kWirePairSize + 4);
  }

 private:
  friend class ArrivalCursor;
  const std::byte* rec_ = nullptr;  // start of the record inside the frame
  Time base_ = kTimeZero;           // the frame's base_time
};

class WireView;

// In-place record iterator over a validated frame. Copyable; copies are
// independent positions over the same buffer.
class ArrivalCursor {
 public:
  // Positions `out` at the next record and advances. Returns false at the
  // end of the frame. Allocation-free and bounds-check-free (the view was
  // validated once at open()).
  // frap:contract(hotpath)
  bool next(WireArrival& out) {
    if (remaining_ == 0) return false;
    const std::byte* p = data_ + off_;
    out.rec_ = p;
    out.base_ = base_time_;
    std::size_t size = kWireRecordFixedSize;
    if (std::to_integer<std::uint8_t>(p[32]) ==
        static_cast<std::uint8_t>(RecordKind::kInline)) {
      size += load_u16(p + 34) * kWirePairSize;
    }
    off_ += size;
    --remaining_;
    return true;
  }

  [[nodiscard]] std::uint32_t remaining() const { return remaining_; }

 private:
  friend class WireView;
  ArrivalCursor(const std::byte* data, std::size_t first_record_offset,
                std::uint32_t count, Time base_time)
      : data_(data),
        off_(first_record_offset),
        remaining_(count),
        base_time_(base_time) {}

  const std::byte* data_;
  std::size_t off_;
  std::uint32_t remaining_;
  Time base_time_;
};

// Validated, zero-copy view of one frame.
class WireView {
 public:
  WireView() = default;  // !valid(); open() produces usable views

  // Full structural + value validation in one linear pass; no allocation.
  [[nodiscard]] static WireParse validate(std::span<const std::byte> frame);

  // validate() + bind. On failure returns a view with valid() == false and
  // stores the typed error in *parse (when given).
  [[nodiscard]] static WireView open(std::span<const std::byte> frame,
                                     WireParse* parse = nullptr);

  [[nodiscard]] bool valid() const { return data_ != nullptr; }
  [[nodiscard]] std::size_t num_stages() const { return num_stages_; }
  [[nodiscard]] std::uint32_t record_count() const { return record_count_; }
  [[nodiscard]] Time base_time() const { return base_time_; }
  [[nodiscard]] std::size_t size_bytes() const { return size_; }

  [[nodiscard]] ArrivalCursor cursor() const {
    FRAP_EXPECTS(valid());
    return ArrivalCursor(data_, kWireHeaderSize, record_count_, base_time_);
  }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint16_t num_stages_ = 0;
  std::uint32_t record_count_ = 0;
  Time base_time_ = kTimeZero;
};

}  // namespace frap::ingest
