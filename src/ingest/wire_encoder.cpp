#include "ingest/wire_encoder.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace frap::ingest {

WireEncoder::WireEncoder(std::size_t num_stages, Time base_time)
    : num_stages_(num_stages), base_time_(base_time), last_arrival_(base_time) {
  FRAP_EXPECTS(num_stages_ > 0);
  FRAP_EXPECTS(num_stages_ <= std::numeric_limits<std::uint16_t>::max());
  FRAP_EXPECTS(std::isfinite(base_time));
  reset(base_time);
}

void WireEncoder::reset(Time base_time) {
  FRAP_EXPECTS(std::isfinite(base_time));
  buf_.clear();
  buf_.resize(kWireHeaderSize);
  count_ = 0;
  base_time_ = base_time;
  last_arrival_ = base_time;
  std::byte* h = buf_.data();
  store_u32(h, kWireMagic);
  store_u16(h + 4, kWireVersion);
  store_u16(h + 6, static_cast<std::uint16_t>(num_stages_));
  store_u32(h + 8, 0);  // record_count, patched by frame()
  store_u32(h + 12, 0);
  store_f64(h + 16, base_time_);
}

void WireEncoder::append_prefix(Time arrival, std::uint64_t id,
                                Duration deadline, double importance,
                                RecordKind kind, std::uint16_t n) {
  FRAP_EXPECTS(std::isfinite(arrival) && arrival >= last_arrival_);
  FRAP_EXPECTS(std::isfinite(deadline) && deadline > 0);
  FRAP_EXPECTS(std::isfinite(importance));
  last_arrival_ = arrival;

  const std::size_t rec = buf_.size();
  buf_.resize(rec + kWireRecordFixedSize);
  std::byte* p = buf_.data() + rec;
  store_u64(p, id);
  store_f64(p + 8, deadline);
  store_f64(p + 16, importance);
  store_f64(p + 24, arrival);  // absolute: exact bit-for-bit round trip
  p[32] = static_cast<std::byte>(kind);
  p[33] = std::byte{0};
  store_u16(p + 34, n);
  ++count_;
}

void WireEncoder::add(Time arrival, const core::TaskSpec& spec) {
  FRAP_EXPECTS(spec.valid());
  FRAP_EXPECTS(spec.num_stages() == num_stages_);
  std::uint16_t touched = 0;
  for (const auto& s : spec.stages) {
    FRAP_EXPECTS(std::isfinite(s.compute));
    if (s.compute > 0) ++touched;
  }
  FRAP_EXPECTS(touched > 0);

  append_prefix(arrival, spec.id, spec.deadline, spec.importance,
                RecordKind::kInline, touched);
  const std::size_t pairs = buf_.size();
  buf_.resize(pairs + static_cast<std::size_t>(touched) * kWirePairSize);
  std::byte* p = buf_.data() + pairs;
  for (std::size_t j = 0; j < num_stages_; ++j) {
    const Duration c = spec.stages[j].compute;
    if (c <= 0) continue;
    store_u32(p, static_cast<std::uint32_t>(j));
    store_f64(p + 4, c);
    p += kWirePairSize;
  }
}

void WireEncoder::add_class(Time arrival, std::uint64_t id, Duration deadline,
                            double importance, std::uint16_t class_id) {
  append_prefix(arrival, id, deadline, importance, RecordKind::kClass,
                class_id);
}

std::span<const std::byte> WireEncoder::frame() {
  FRAP_EXPECTS(count_ > 0);
  store_u32(buf_.data() + 8, count_);
  return std::span<const std::byte>(buf_.data(), buf_.size());
}

}  // namespace frap::ingest
