#include "pipeline/trace_analysis.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace frap::pipeline {

namespace {

struct TaskRecord {
  Time release = kTimeZero;
  bool has_release = false;
  std::vector<Time> departures;  // by stage; NaN-free: guarded by flags
  std::vector<bool> has_departure;
};

}  // namespace

std::vector<Duration> stage_residence_times(const TraceLog& log,
                                            std::uint64_t task_id,
                                            std::size_t num_stages) {
  FRAP_EXPECTS(num_stages >= 1);
  TaskRecord rec;
  rec.departures.assign(num_stages, kTimeZero);
  rec.has_departure.assign(num_stages, false);
  for (const auto& e : log.for_task(task_id)) {
    if (e.kind == TraceEventKind::kRelease) {
      rec.release = e.time;
      rec.has_release = true;
    } else if (e.kind == TraceEventKind::kStageDeparture) {
      if (e.detail < num_stages) {
        rec.departures[e.detail] = e.time;
        rec.has_departure[e.detail] = true;
      }
    }
  }
  if (!rec.has_release) return {};
  for (bool has : rec.has_departure) {
    if (!has) return {};
  }
  std::vector<Duration> residence(num_stages);
  Time prev = rec.release;
  for (std::size_t j = 0; j < num_stages; ++j) {
    residence[j] = rec.departures[j] - prev;
    prev = rec.departures[j];
  }
  return residence;
}

std::vector<Duration> max_stage_residence(const TraceLog& log,
                                          std::size_t num_stages) {
  FRAP_EXPECTS(num_stages >= 1);
  // Collect ids with a Complete event, then analyze each.
  std::vector<Duration> max_residence(num_stages, 0);
  std::unordered_map<std::uint64_t, bool> seen;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& e = log[i];
    if (e.kind != TraceEventKind::kComplete) continue;
    if (!seen.emplace(e.task_id, true).second) continue;
    const auto residence =
        stage_residence_times(log, e.task_id, num_stages);
    for (std::size_t j = 0; j < residence.size(); ++j) {
      max_residence[j] = std::max(max_residence[j], residence[j]);
    }
  }
  return max_residence;
}

}  // namespace frap::pipeline
