// Offline analysis over captured lifecycle traces.
//
// The trace records Release and per-stage StageDeparture instants, which is
// exactly the data Theorem 1 speaks about: the residence time of a task on
// stage j is L_0 = departure_0 - release, L_j = departure_j -
// departure_{j-1}. These helpers recover the L_j — per task, and as
// per-stage maxima over a whole run — so experiments can check the
// stage-delay bound L_j <= f(U_j) * D_max directly rather than only its
// end-to-end sum.
#pragma once

#include <cstdint>
#include <vector>

#include "pipeline/trace.h"
#include "util/time.h"

namespace frap::pipeline {

// Residence time per stage for one task. Returns an empty vector when the
// trace does not contain a complete Release + all-departures record for
// the task (e.g. it was shed, is still in flight, or the ring dropped
// events).
std::vector<Duration> stage_residence_times(const TraceLog& log,
                                            std::uint64_t task_id,
                                            std::size_t num_stages);

// Maximum residence observed per stage across all tasks with complete
// records. Zeros when nothing completed.
std::vector<Duration> max_stage_residence(const TraceLog& log,
                                          std::size_t num_stages);

}  // namespace frap::pipeline
