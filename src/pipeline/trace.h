// Execution trace capture: a typed, queryable log of task lifecycle events.
//
// Used for debugging schedules, validating timelines in tests, and
// exporting runs for offline analysis. The runtime emits Release /
// StageDeparture / Complete; admission-side events (Arrival, Admit, Reject,
// Shed) are recorded by whichever controller the experiment wires up.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/time.h"

namespace frap::pipeline {

enum class TraceEventKind {
  kArrival,         // task arrived at the admission controller
  kAdmit,           // admission accepted it
  kReject,          // admission (or its timeout) rejected it
  kRelease,         // task entered stage 1 / its source nodes
  kStageDeparture,  // finished one stage (detail = stage index)
  kComplete,        // left the pipeline (detail = 1 if deadline missed)
  kShed,            // aborted by load shedding
};

// Human-readable name, e.g. for dumps.
const char* to_string(TraceEventKind kind);

struct TraceEvent {
  Time time = kTimeZero;
  TraceEventKind kind = TraceEventKind::kArrival;
  std::uint64_t task_id = 0;
  std::uint64_t detail = 0;  // stage index / missed flag / free-form
};

class TraceLog {
 public:
  // `capacity` caps memory: once full, the OLDEST events are dropped (the
  // log keeps a moving tail of the run). 0 = unbounded.
  explicit TraceLog(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(Time t, TraceEventKind kind, std::uint64_t task_id,
              std::uint64_t detail = 0);

  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  const TraceEvent& operator[](std::size_t i) const { return events_[i]; }

  // All events for one task, in time order.
  std::vector<TraceEvent> for_task(std::uint64_t task_id) const;

  // Count of events of one kind.
  std::size_t count(TraceEventKind kind) const;

  // Tab-separated dump: time, kind, task, detail.
  void dump(std::ostream& os) const;

  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // ring start when capacity_ > 0 and full
  std::uint64_t dropped_ = 0;
};

}  // namespace frap::pipeline
