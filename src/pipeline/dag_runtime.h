// End-to-end execution of admitted DAG tasks (Sec. 3.3) over a set of
// independent resources.
//
// A node becomes ready when all its predecessors finish; ready nodes are
// submitted to their resource's stage server. The task completes when every
// node has finished (its end-to-end delay is then the realized critical
// path). Departure signals for the synthetic-utilization tracker fire per
// RESOURCE: a task departs resource k once its last node on k completes,
// generalizing the pipeline's per-stage departure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "metrics/counters.h"
#include "obs/stage_observer.h"
#include "pipeline/trace.h"
#include "sched/stage_server.h"
#include "sim/simulator.h"

namespace frap::pipeline {

class DagRuntime : private sched::StageListener {
 public:
  // `tracker` may be null; when given it must have one stage per resource.
  // `policy` selects the per-resource dispatch discipline (sched/policy.h);
  // node jobs carry the task's end-to-end absolute deadline for EDF/LLF.
  DagRuntime(
      sim::Simulator& sim, std::size_t num_resources,
      core::SyntheticUtilizationTracker* tracker,
      const sched::SchedulingPolicy& policy = sched::fixed_priority_policy());

  DagRuntime(const DagRuntime&) = delete;
  DagRuntime& operator=(const DagRuntime&) = delete;

  std::size_t num_resources() const { return servers_.size(); }
  sched::StageServer& resource(std::size_t k) { return *servers_[k]; }

  using CompletionCallback =
      std::function<void(const core::GraphTaskSpec&, Duration, bool)>;
  void set_on_task_complete(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  // Priority value used for all of a task's nodes (fixed priority). Default:
  // deadline-monotonic (value = relative deadline).
  void set_priority_policy(
      std::function<sched::PriorityValue(const core::GraphTaskSpec&)> policy);

  // Optional lifecycle tracing (Release / StageDeparture(resource) /
  // Complete). The log must outlive the runtime; nullptr detaches.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  // Optional per-resource gauges (queue depth, node sojourn histograms; one
  // observer "stage" per resource). Must outlive the runtime; nullptr
  // detaches. Every node release is an enqueue on its resource and every
  // node completion (or abort of a released node) a departure.
  void set_stage_observer(obs::StageObserver* observer);

  // Releases an admitted DAG task now; all source nodes enter their
  // resources immediately.
  void start_task(const core::GraphTaskSpec& spec, Time absolute_deadline);

  // Aborts a DAG task wherever its nodes currently are: running/queued
  // node jobs are removed from their resources, pending nodes never
  // release. No-op for unknown/completed ids. Does not touch the tracker
  // (shedding controllers remove contributions themselves).
  void abort_task(std::uint64_t task_id);

  bool task_in_flight(std::uint64_t task_id) const {
    return execs_.find(task_id) != execs_.end();
  }

  // True once any node of the task has consumed processor time (the
  // sound-shedding predicate; unknown/completed ids report true).
  bool task_started_executing(std::uint64_t task_id) const;

  std::uint64_t aborted() const { return aborted_; }

  std::uint64_t started() const { return started_; }
  std::uint64_t completed() const { return completed_; }
  const metrics::RatioTracker& misses() const { return misses_; }
  const metrics::RunningStats& response_times() const { return response_; }

  std::vector<double> resource_utilizations(Time from, Time to) const;

  // Allocation-free overload into a caller-owned buffer of exactly
  // num_resources() elements.
  void resource_utilizations(Time from, Time to, std::span<double> out) const;

 private:
  struct Exec {
    core::GraphTaskSpec spec;
    Time release = kTimeZero;
    Time absolute_deadline = kTimeZero;
    sched::PriorityValue priority = 0;
    std::vector<std::size_t> pending_preds;  // per node
    // Per-node successor lists, built per task ONLY when spec.shape is
    // unset; an interned spec walks its shape's CSR instead.
    std::vector<std::vector<std::size_t>> successors;
    std::vector<std::unique_ptr<sched::Job>> jobs;  // per node
    std::vector<Time> node_release;                 // per node (if released)
    std::vector<std::size_t> nodes_left_on_resource;  // per resource
    std::size_t nodes_remaining = 0;
  };

  // StageListener: resources report completion/idle with their index in the
  // tag (set at construction).
  void on_job_complete(sched::StageExecutor& stage, sched::Job& job) override;
  void on_stage_idle(sched::StageExecutor& stage) override;

  void on_node_complete(sched::Job& job);
  void release_node(Exec& exec, std::size_t node);

  sim::Simulator& sim_;
  core::SyntheticUtilizationTracker* tracker_;
  std::vector<std::unique_ptr<sched::StageServer>> servers_;
  std::function<sched::PriorityValue(const core::GraphTaskSpec&)> policy_;
  CompletionCallback on_complete_;
  TraceLog* trace_ = nullptr;
  obs::StageObserver* stage_obs_ = nullptr;

  struct JobContext {
    std::uint64_t task_id;
    std::size_t node;
  };
  std::unordered_map<std::uint64_t, JobContext> job_context_;
  std::unordered_map<std::uint64_t, Exec> execs_;
  std::uint64_t next_job_id_ = 1;

  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
  metrics::RatioTracker misses_;
  metrics::RunningStats response_;
};

}  // namespace frap::pipeline
