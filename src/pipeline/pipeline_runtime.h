// End-to-end execution of admitted pipeline tasks.
//
// The runtime owns one StageServer per stage and moves each task through
// them in order (precedence-constrained chain): the departure from stage j
// is the arrival at stage j+1, exactly the model of Sec. 2. It also feeds
// the synthetic-utilization tracker the two runtime signals the admission
// scheme needs — subtask departures and stage-idle transitions — and
// records end-to-end response times and deadline misses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "metrics/counters.h"
#include "obs/stage_observer.h"
#include "pipeline/trace.h"
#include "sched/stage_executor.h"
#include "sim/simulator.h"

namespace frap::pipeline {

// Maps a task to its fixed priority value (smaller = more urgent). Must not
// depend on arrival time (fixed-priority assumption of the paper). Only
// consulted by fixed-priority scheduling; dynamic policies (EDF/LLF) derive
// dispatch keys from the job's absolute deadline instead.
using PriorityPolicy = std::function<sched::PriorityValue(const core::TaskSpec&)>;

// Deadline-monotonic: priority value = relative deadline (optimal
// fixed-priority policy for aperiodic tasks; alpha = 1).
PriorityPolicy deadline_monotonic_policy();

class PipelineRuntime : private sched::StageListener {
 public:
  // `tracker` may be null (no admission bookkeeping, e.g. no-admission
  // baselines). If given, it must have num_stages() == `stages`.
  // `policy` selects the dispatch discipline for every stage executor
  // (sched/policy.h); `procs_per_stage` > 1 backs each stage with a
  // PooledStageServer of that many processors (global scheduling — with
  // edf_policy() this is gEDF) instead of a single-processor StageServer.
  PipelineRuntime(
      sim::Simulator& sim, std::size_t stages,
      core::SyntheticUtilizationTracker* tracker,
      const sched::SchedulingPolicy& policy = sched::fixed_priority_policy(),
      std::size_t procs_per_stage = 1);

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  std::size_t num_stages() const { return servers_.size(); }
  sched::StageExecutor& stage(std::size_t j) { return *servers_[j]; }
  const sched::StageExecutor& stage(std::size_t j) const {
    return *servers_[j];
  }

  // The scheduling policy every stage dispatches through.
  const sched::SchedulingPolicy& scheduling_policy() const {
    return servers_.front()->policy();
  }

  void set_priority_policy(PriorityPolicy policy);

  // Optional lifecycle tracing (Release / StageDeparture / Complete / Shed
  // events). The log must outlive the runtime; pass nullptr to detach.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  // Optional per-stage gauges (queue depth, sojourn histograms; see
  // docs/observability.md). Must have num_stages() stages and outlive the
  // runtime; nullptr detaches. Aborted tasks depart their current stage so
  // queue-depth gauges conserve.
  void set_stage_observer(obs::StageObserver* observer);

  // Callback at task completion: (spec, response_time, missed_deadline).
  using CompletionCallback =
      std::function<void(const core::TaskSpec&, Duration, bool)>;
  void set_on_task_complete(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  // Releases an admitted task into stage 1 now. `absolute_deadline` is the
  // miss threshold (arrival + D for immediate admission; still anchored at
  // the original arrival for tasks admitted after waiting).
  void start_task(const core::TaskSpec& spec, Time absolute_deadline);

  // Aborts a task wherever it currently is (load shedding). No-op when the
  // task already completed. Does not touch the tracker — the shedding
  // controller removes contributions itself.
  void abort_task(std::uint64_t task_id);

  // True while the task is still executing in the pipeline.
  bool task_in_flight(std::uint64_t task_id) const {
    return execs_.find(task_id) != execs_.end();
  }

  // True once the task has consumed ANY processor time. Shedding a task
  // that already executed is unsound (its past interference is real but
  // its synthetic-utilization contribution would vanish), so shedding
  // filters use this predicate. Unknown/completed tasks report true
  // (conservative: not sheddable).
  bool task_started_executing(std::uint64_t task_id) const;

  // --- statistics ---
  std::uint64_t started() const { return started_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t aborted() const { return aborted_; }
  const metrics::RatioTracker& misses() const { return misses_; }
  const metrics::RunningStats& response_times() const { return response_; }

  // Real utilization of each stage over [from, to].
  std::vector<double> stage_utilizations(Time from, Time to) const;

  // Allocation-free overload into a caller-owned buffer of exactly
  // num_stages() elements.
  void stage_utilizations(Time from, Time to, std::span<double> out) const;

 private:
  struct Exec {
    core::TaskSpec spec;
    Time release = kTimeZero;
    Time absolute_deadline = kTimeZero;
    sched::PriorityValue priority = 0;
    std::size_t current_stage = 0;
    Time stage_enter = kTimeZero;  // when it entered current_stage's queue
    std::unique_ptr<sched::Job> job;  // job on the current stage
  };

  // StageListener: executors report completion/idle with their stage index
  // in the tag (set at construction).
  void on_job_complete(sched::StageExecutor& stage, sched::Job& job) override;
  void on_stage_idle(sched::StageExecutor& stage) override;

  void on_stage_complete(std::size_t stage, sched::Job& job);
  void submit_to_stage(Exec& exec, std::size_t stage);

  sim::Simulator& sim_;
  core::SyntheticUtilizationTracker* tracker_;
  std::vector<std::unique_ptr<sched::StageExecutor>> servers_;
  PriorityPolicy policy_;
  CompletionCallback on_complete_;
  TraceLog* trace_ = nullptr;
  obs::StageObserver* stage_obs_ = nullptr;

  // Job ids are globally unique per runtime; map back to the owning task.
  std::unordered_map<std::uint64_t, std::uint64_t> job_to_task_;
  std::unordered_map<std::uint64_t, Exec> execs_;  // by task id
  std::uint64_t next_job_id_ = 1;

  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
  metrics::RatioTracker misses_;
  metrics::RunningStats response_;
};

}  // namespace frap::pipeline
