// Replicated experiment runs: the same configuration across independent
// seeds, with summary statistics per metric. Reproduction claims should be
// made from means with spread, not single draws.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/counters.h"
#include "pipeline/experiment.h"

namespace frap::pipeline {

struct ReplicatedResult {
  metrics::RunningStats avg_stage_utilization;
  metrics::RunningStats bottleneck_utilization;
  metrics::RunningStats acceptance_ratio;
  metrics::RunningStats miss_ratio;
  metrics::RunningStats mean_response;
  std::vector<ExperimentResult> runs;  // per-seed details, in seed order
};

// Runs `config` once per seed in `seeds` (each run gets config.seed
// replaced). Requires at least one seed.
ReplicatedResult run_replicated(const ExperimentConfig& config,
                                const std::vector<std::uint64_t>& seeds);

// Convenience: seeds base, base+1, ..., base+count-1.
ReplicatedResult run_replicated(const ExperimentConfig& config,
                                std::uint64_t seed_base, std::size_t count);

}  // namespace frap::pipeline
