// Command-line configuration for the experiment driver.
//
// Parses `--key=value` / `--flag` arguments into an ExperimentConfig so a
// single binary (examples/experiment_cli) can run any Sec. 4-style
// experiment without recompiling. Unknown flags and malformed values are
// reported, not ignored.
//
// Flags:
//   --stages=N            pipeline length                (default 2)
//   --load=F              input load, fraction of stage capacity (1.0)
//   --resolution=F        mean deadline / mean total compute     (100)
//   --mean-compute=MS     per-stage mean computation, milliseconds (10)
//   --imbalance=F         stage-N mean = F * stage-1 mean        (1.0)
//   --duration=S          arrival horizon, seconds               (120)
//   --warmup=S            measurement start, seconds             (10)
//   --seed=N              RNG seed                               (1)
//   --admission=MODE      exact | approx | none | split          (exact)
//   --policy=P            dm | random | edf | llf | gedf         (dm)
//   --procs=M             processors per stage (gedf default: 2) (1)
//   --patience=MS         waiting-admission patience, ms         (0)
//   --no-idle-reset       disable the idle reset (ablation)
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "pipeline/experiment.h"

namespace frap::pipeline {

struct CliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  ExperimentConfig config;
};

// Parses the given arguments (NOT including argv[0]).
CliParseResult parse_experiment_args(const std::vector<std::string>& args);

// The flag reference above, for --help output.
std::string experiment_cli_usage();

// --- `obs` subcommand -----------------------------------------------------
//
// `experiment_cli obs [--format=jsonl|prom] [--out=PATH] [--ring=N]
//  [experiment flags...]` runs one traced experiment and renders either the
// decision trace as JSONL or the aggregated metrics as a Prometheus text
// page (docs/observability.md). The run is fully deterministic: the
// observer is wired with a ManualClock and latency sampling off, so the
// rendered output depends only on the flags and seed.

enum class ObsFormat {
  kJsonl,       // one JSON object per DecisionEvent
  kPrometheus,  // text exposition format 0.0.4
};

struct ObsCliConfig {
  ObsFormat format = ObsFormat::kJsonl;
  std::string out_path;  // empty = caller decides (stdout)
  std::size_t ring_capacity = std::size_t{1} << 16;
  ExperimentConfig experiment;
};

struct ObsCliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  ObsCliConfig config;
};

// Parses the arguments AFTER the `obs` word (obs-specific flags are
// consumed here; everything else must be a valid experiment flag).
ObsCliParseResult parse_obs_args(const std::vector<std::string>& args);

std::string obs_cli_usage();

// Runs the traced experiment and renders cfg.format to `os`. Returns the
// process exit code (0 = success).
int run_obs_command(const ObsCliConfig& cfg, std::ostream& os);

// --- `ingest` subcommand --------------------------------------------------
//
// `experiment_cli ingest [--count=N] [--stages=N] [--mmpp] [--seed=N]
//  [--capture=PATH] [--in=PATH] [--shards=K] [--format=prom|jsonl]
//  [--out=PATH] ...` exercises the full wire path: generate a workload
// capture (Poisson or MMPP), encode it as one binary frame
// (docs/wire_format.md), optionally persist/load the frame as a file, then
// zero-copy decode and admit every record through the sharded service with
// tracing on. Output is the service's Prometheus page or decision-trace
// JSONL, prefixed by a one-line ingest summary. Deterministic for fixed
// flags: the observer runs on a ManualClock with latency sampling off, and
// frames replay bit-identically (tests/cli_test.cpp).

struct IngestCliConfig {
  ObsFormat format = ObsFormat::kPrometheus;
  std::string out_path;      // empty = caller decides (stdout)
  std::string in_path;       // read this captured frame file, don't generate
  std::string capture_path;  // also write the encoded frame here
  std::size_t count = 1000;  // records to generate (ignored with --in)
  std::size_t stages = 2;
  double load = 0.5;
  double resolution = 100.0;
  double mean_compute_ms = 10.0;
  std::uint64_t seed = 1;
  std::size_t shards = 4;
  bool mmpp = false;  // bursty MMPP arrivals instead of Poisson
  std::size_t ring_capacity = std::size_t{1} << 16;
};

struct IngestCliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  IngestCliConfig config;
};

// Parses the arguments AFTER the `ingest` word.
IngestCliParseResult parse_ingest_args(const std::vector<std::string>& args);

std::string ingest_cli_usage();

// Runs the ingest pipeline and renders cfg.format to `os`; failures
// (unreadable file, invalid frame) are reported on `err`. Returns the
// process exit code (0 = success).
int run_ingest_command(const IngestCliConfig& cfg, std::ostream& os,
                       std::ostream& err);

}  // namespace frap::pipeline
