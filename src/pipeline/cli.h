// Command-line configuration for the experiment driver.
//
// Parses `--key=value` / `--flag` arguments into an ExperimentConfig so a
// single binary (examples/experiment_cli) can run any Sec. 4-style
// experiment without recompiling. Unknown flags and malformed values are
// reported, not ignored.
//
// Flags:
//   --stages=N            pipeline length                (default 2)
//   --load=F              input load, fraction of stage capacity (1.0)
//   --resolution=F        mean deadline / mean total compute     (100)
//   --mean-compute=MS     per-stage mean computation, milliseconds (10)
//   --imbalance=F         stage-N mean = F * stage-1 mean        (1.0)
//   --duration=S          arrival horizon, seconds               (120)
//   --warmup=S            measurement start, seconds             (10)
//   --seed=N              RNG seed                               (1)
//   --admission=MODE      exact | approx | none | split          (exact)
//   --policy=P            dm | random | edf | llf | gedf         (dm)
//   --procs=M             processors per stage (gedf default: 2) (1)
//   --patience=MS         waiting-admission patience, ms         (0)
//   --no-idle-reset       disable the idle reset (ablation)
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "pipeline/experiment.h"

namespace frap::pipeline {

struct CliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  ExperimentConfig config;
};

// Parses the given arguments (NOT including argv[0]).
CliParseResult parse_experiment_args(const std::vector<std::string>& args);

// The flag reference above, for --help output.
std::string experiment_cli_usage();

// --- `obs` subcommand -----------------------------------------------------
//
// `experiment_cli obs [--format=jsonl|prom] [--out=PATH] [--ring=N]
//  [experiment flags...]` runs one traced experiment and renders either the
// decision trace as JSONL or the aggregated metrics as a Prometheus text
// page (docs/observability.md). The run is fully deterministic: the
// observer is wired with a ManualClock and latency sampling off, so the
// rendered output depends only on the flags and seed.

enum class ObsFormat {
  kJsonl,       // one JSON object per DecisionEvent
  kPrometheus,  // text exposition format 0.0.4
};

struct ObsCliConfig {
  ObsFormat format = ObsFormat::kJsonl;
  std::string out_path;  // empty = caller decides (stdout)
  std::size_t ring_capacity = std::size_t{1} << 16;
  ExperimentConfig experiment;
};

struct ObsCliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  ObsCliConfig config;
};

// Parses the arguments AFTER the `obs` word (obs-specific flags are
// consumed here; everything else must be a valid experiment flag).
ObsCliParseResult parse_obs_args(const std::vector<std::string>& args);

std::string obs_cli_usage();

// Runs the traced experiment and renders cfg.format to `os`. Returns the
// process exit code (0 = success).
int run_obs_command(const ObsCliConfig& cfg, std::ostream& os);

}  // namespace frap::pipeline
