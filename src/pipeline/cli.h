// Command-line configuration for the experiment driver.
//
// Parses `--key=value` / `--flag` arguments into an ExperimentConfig so a
// single binary (examples/experiment_cli) can run any Sec. 4-style
// experiment without recompiling. Unknown flags and malformed values are
// reported, not ignored.
//
// Flags:
//   --stages=N            pipeline length                (default 2)
//   --load=F              input load, fraction of stage capacity (1.0)
//   --resolution=F        mean deadline / mean total compute     (100)
//   --mean-compute=MS     per-stage mean computation, milliseconds (10)
//   --imbalance=F         stage-N mean = F * stage-1 mean        (1.0)
//   --duration=S          arrival horizon, seconds               (120)
//   --warmup=S            measurement start, seconds             (10)
//   --seed=N              RNG seed                               (1)
//   --admission=MODE      exact | approx | none | split          (exact)
//   --policy=P            dm | random                            (dm)
//   --patience=MS         waiting-admission patience, ms         (0)
//   --no-idle-reset       disable the idle reset (ablation)
#pragma once

#include <string>
#include <vector>

#include "pipeline/experiment.h"

namespace frap::pipeline {

struct CliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  ExperimentConfig config;
};

// Parses the given arguments (NOT including argv[0]).
CliParseResult parse_experiment_args(const std::vector<std::string>& args);

// The flag reference above, for --help output.
std::string experiment_cli_usage();

}  // namespace frap::pipeline
