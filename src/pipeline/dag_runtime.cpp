#include "pipeline/dag_runtime.h"

#include <string>

#include "core/task_graph_shape.h"
#include "util/check.h"

namespace frap::pipeline {

DagRuntime::DagRuntime(sim::Simulator& sim, std::size_t num_resources,
                       core::SyntheticUtilizationTracker* tracker,
                       const sched::SchedulingPolicy& sched_policy)
    : sim_(sim),
      tracker_(tracker),
      policy_([](const core::GraphTaskSpec& s) { return s.deadline; }) {
  FRAP_EXPECTS(num_resources >= 1);
  FRAP_EXPECTS(tracker_ == nullptr ||
               tracker_->num_stages() == num_resources);
  servers_.reserve(num_resources);
  for (std::size_t k = 0; k < num_resources; ++k) {
    auto server = std::make_unique<sched::StageServer>(
        sim_, "resource-" + std::to_string(k), sched_policy);
    server->set_tag(k);
    server->set_listener(this);
    servers_.push_back(std::move(server));
  }
}

void DagRuntime::on_job_complete(sched::StageExecutor& /*stage*/,
                                 sched::Job& job) {
  on_node_complete(job);
}

void DagRuntime::on_stage_idle(sched::StageExecutor& stage) {
  if (tracker_ != nullptr) tracker_->on_stage_idle(stage.tag());
}

void DagRuntime::set_priority_policy(
    std::function<sched::PriorityValue(const core::GraphTaskSpec&)> policy) {
  FRAP_EXPECTS(policy != nullptr);
  policy_ = std::move(policy);
}

void DagRuntime::set_stage_observer(obs::StageObserver* observer) {
  FRAP_EXPECTS(observer == nullptr ||
               observer->num_stages() == servers_.size());
  stage_obs_ = observer;
}

void DagRuntime::start_task(const core::GraphTaskSpec& spec,
                            Time absolute_deadline) {
  const bool interned = spec.shape != nullptr;
  if (interned) {
    // Canonicalized spec: the registry validated the graph at intern time
    // and the shape carries indegrees + CSR adjacency, so the per-task
    // validity re-walk (a topological sort per release) is skipped and the
    // per-edge successor lists are never rebuilt — on_node_complete walks
    // the shape's CSR directly.
    FRAP_ASSERT(spec.shape->layout_matches(spec));
    FRAP_EXPECTS(spec.deadline > 0);
    FRAP_EXPECTS(spec.shape->num_nodes() == spec.nodes.size());
  } else {
    FRAP_EXPECTS(spec.valid(servers_.size()));
  }
  FRAP_EXPECTS(execs_.find(spec.id) == execs_.end());

  Exec exec;
  exec.spec = spec;
  exec.release = sim_.now();
  exec.absolute_deadline = absolute_deadline;
  exec.priority = policy_(spec);
  exec.nodes_remaining = spec.nodes.size();
  exec.jobs.resize(spec.nodes.size());
  exec.node_release.assign(spec.nodes.size(), kTimeZero);
  exec.nodes_left_on_resource.assign(servers_.size(), 0);
  if (interned) {
    const auto indeg = spec.shape->indegree();
    exec.pending_preds.assign(indeg.begin(), indeg.end());
  } else {
    exec.pending_preds.assign(spec.nodes.size(), 0);
    exec.successors.assign(spec.nodes.size(), {});
    for (const auto& e : spec.edges) {
      ++exec.pending_preds[e.to];
      exec.successors[e.from].push_back(e.to);
    }
  }
  for (const auto& n : spec.nodes) {
    FRAP_EXPECTS(n.resource < servers_.size());
    ++exec.nodes_left_on_resource[n.resource];
  }

  auto [it, inserted] = execs_.emplace(spec.id, std::move(exec));
  FRAP_ASSERT(inserted);
  ++started_;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceEventKind::kRelease, spec.id);
  }

  // Release all sources. Collect first: release_node submits to servers,
  // which can complete zero-length nodes synchronously-in-time via events,
  // but never re-enters this Exec during the loop.
  for (std::size_t i = 0; i < it->second.spec.nodes.size(); ++i) {
    if (it->second.pending_preds[i] == 0) release_node(it->second, i);
  }
}

void DagRuntime::release_node(Exec& exec, std::size_t node) {
  const std::uint64_t job_id = next_job_id_++;
  exec.jobs[node] = std::make_unique<sched::Job>(
      job_id, exec.priority, exec.spec.nodes[node].demand.make_segments());
  exec.jobs[node]->absolute_deadline = exec.absolute_deadline;
  job_context_.emplace(job_id, JobContext{exec.spec.id, node});
  exec.node_release[node] = sim_.now();
  if (stage_obs_ != nullptr) {
    stage_obs_->on_enqueue(exec.spec.nodes[node].resource, sim_.now());
  }
  servers_[exec.spec.nodes[node].resource]->submit(*exec.jobs[node]);
}

void DagRuntime::on_node_complete(sched::Job& job) {
  auto jt = job_context_.find(job.id);
  FRAP_ASSERT(jt != job_context_.end());
  const JobContext ctx = jt->second;
  job_context_.erase(jt);

  auto et = execs_.find(ctx.task_id);
  FRAP_ASSERT(et != execs_.end());
  Exec& exec = et->second;

  const std::size_t resource = exec.spec.nodes[ctx.node].resource;
  if (stage_obs_ != nullptr) {
    stage_obs_->on_depart(resource, exec.node_release[ctx.node], sim_.now());
  }
  FRAP_ASSERT(exec.nodes_left_on_resource[resource] > 0);
  if (--exec.nodes_left_on_resource[resource] == 0) {
    if (tracker_ != nullptr) tracker_->mark_departed(ctx.task_id, resource);
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), TraceEventKind::kStageDeparture,
                     ctx.task_id, resource);
    }
  }

  FRAP_ASSERT(exec.nodes_remaining > 0);
  --exec.nodes_remaining;
  if (exec.spec.shape != nullptr) {
    for (std::uint32_t succ : exec.spec.shape->successors(ctx.node)) {
      FRAP_ASSERT(exec.pending_preds[succ] > 0);
      if (--exec.pending_preds[succ] == 0) release_node(exec, succ);
    }
  } else {
    for (std::size_t succ : exec.successors[ctx.node]) {
      FRAP_ASSERT(exec.pending_preds[succ] > 0);
      if (--exec.pending_preds[succ] == 0) release_node(exec, succ);
    }
  }

  if (exec.nodes_remaining == 0) {
    const Duration response = sim_.now() - exec.release;
    const bool missed = sim_.now() > exec.absolute_deadline + 1e-12;
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), TraceEventKind::kComplete, ctx.task_id,
                     missed ? 1 : 0);
    }
    ++completed_;
    misses_.record(missed);
    response_.add(response);
    if (on_complete_) {
      core::GraphTaskSpec spec = std::move(exec.spec);
      execs_.erase(et);
      on_complete_(spec, response, missed);
    } else {
      execs_.erase(et);
    }
  }
}

void DagRuntime::abort_task(std::uint64_t task_id) {
  auto et = execs_.find(task_id);
  if (et == execs_.end()) return;
  Exec& exec = et->second;
  for (std::size_t node = 0; node < exec.jobs.size(); ++node) {
    auto& job = exec.jobs[node];
    if (job == nullptr) continue;  // node never released
    if (job->on_server) {
      servers_[exec.spec.nodes[node].resource]->abort(*job);
      if (stage_obs_ != nullptr) {
        stage_obs_->on_depart(exec.spec.nodes[node].resource,
                              exec.node_release[node], sim_.now());
      }
    }
    job_context_.erase(job->id);
  }
  execs_.erase(et);
  ++aborted_;
}

bool DagRuntime::task_started_executing(std::uint64_t task_id) const {
  auto et = execs_.find(task_id);
  if (et == execs_.end()) return true;  // conservative
  const Exec& exec = et->second;
  if (exec.nodes_remaining < exec.spec.nodes.size()) return true;
  for (const auto& job : exec.jobs) {
    if (job != nullptr && job->has_started) return true;
  }
  return false;
}

std::vector<double> DagRuntime::resource_utilizations(Time from,
                                                      Time to) const {
  std::vector<double> u(servers_.size());
  resource_utilizations(from, to, u);
  return u;
}

void DagRuntime::resource_utilizations(Time from, Time to,
                                       std::span<double> out) const {
  FRAP_EXPECTS(out.size() == servers_.size());
  for (std::size_t k = 0; k < servers_.size(); ++k) {
    out[k] = servers_[k]->meter().utilization(from, to);
  }
}

}  // namespace frap::pipeline
