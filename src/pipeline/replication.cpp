#include "pipeline/replication.h"

#include "util/check.h"

namespace frap::pipeline {

ReplicatedResult run_replicated(const ExperimentConfig& config,
                                const std::vector<std::uint64_t>& seeds) {
  FRAP_EXPECTS(!seeds.empty());
  ReplicatedResult out;
  out.runs.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    ExperimentConfig cfg = config;
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    out.avg_stage_utilization.add(r.avg_stage_utilization);
    out.bottleneck_utilization.add(r.bottleneck_utilization);
    out.acceptance_ratio.add(r.acceptance_ratio);
    out.miss_ratio.add(r.miss_ratio);
    out.mean_response.add(r.mean_response);
    out.runs.push_back(r);
  }
  return out;
}

ReplicatedResult run_replicated(const ExperimentConfig& config,
                                std::uint64_t seed_base, std::size_t count) {
  FRAP_EXPECTS(count >= 1);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds.push_back(seed_base + i);
  }
  return run_replicated(config, seeds);
}

}  // namespace frap::pipeline
