#include "pipeline/trace.h"

#include <algorithm>

#include "util/check.h"

namespace frap::pipeline {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kArrival: return "arrival";
    case TraceEventKind::kAdmit: return "admit";
    case TraceEventKind::kReject: return "reject";
    case TraceEventKind::kRelease: return "release";
    case TraceEventKind::kStageDeparture: return "stage_departure";
    case TraceEventKind::kComplete: return "complete";
    case TraceEventKind::kShed: return "shed";
  }
  return "unknown";
}

void TraceLog::record(Time t, TraceEventKind kind, std::uint64_t task_id,
                      std::uint64_t detail) {
  const TraceEvent e{t, kind, task_id, detail};
  if (capacity_ == 0 || events_.size() < capacity_) {
    events_.push_back(e);
    return;
  }
  // Ring mode: overwrite the oldest.
  events_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceLog::for_task(std::uint64_t task_id) const {
  std::vector<TraceEvent> out;
  const std::size_t n = events_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[(head_ + i) % n];
    if (e.task_id == task_id) out.push_back(e);
  }
  return out;
}

std::size_t TraceLog::count(TraceEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

void TraceLog::dump(std::ostream& os) const {
  const std::size_t n = events_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[(head_ + i) % n];
    os << e.time << '\t' << to_string(e.kind) << '\t' << e.task_id << '\t'
       << e.detail << '\n';
  }
}

void TraceLog::clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

}  // namespace frap::pipeline
