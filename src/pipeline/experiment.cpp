#include "pipeline/experiment.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/admission.h"
#include "core/baselines.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "obs/observer.h"
#include "pipeline/pipeline_runtime.h"
#include "sched/policy.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::pipeline {

namespace {

// Executor dispatch policy for a PriorityMode: both fixed-priority modes
// share the fixed-priority executor (they differ only in the priority
// VALUES assigned); the dynamic modes select their policy singleton.
const sched::SchedulingPolicy& executor_policy(PriorityMode mode) {
  switch (mode) {
    case PriorityMode::kEdf:
      return sched::edf_policy();
    case PriorityMode::kLlf:
      return sched::llf_policy();
    case PriorityMode::kDeadlineMonotonic:
    case PriorityMode::kRandom:
      break;
  }
  return sched::fixed_priority_policy();
}

// Shared mutable state of one experiment run, wired together by
// run_experiment below.
struct Harness {
  explicit Harness(const ExperimentConfig& config)
      : cfg(config),
        gen(config.workload, config.seed),
        tracker(sim, config.workload.num_stages()),
        runtime(sim, config.workload.num_stages(), &tracker,
                executor_policy(config.priority), config.procs_per_stage) {
    tracker.set_idle_reset_enabled(cfg.idle_reset);

    const std::size_t n = cfg.workload.num_stages();
    switch (cfg.priority) {
      case PriorityMode::kDeadlineMonotonic:
        alpha = 1.0;
        runtime.set_priority_policy(deadline_monotonic_policy());
        break;
      case PriorityMode::kRandom: {
        // Fixed random priorities; the worst-case urgency inversion over
        // the uniform deadline range is D_min / D_max.
        alpha = util::safe_div(cfg.workload.deadline_min(),
                               cfg.workload.deadline_max());
        runtime.set_priority_policy([this](const core::TaskSpec&) {
          return gen.aux_rng().uniform01();
        });
        break;
      }
      case PriorityMode::kEdf:
      case PriorityMode::kLlf:
        // Admission stays on the deadline-monotonic region (alpha = 1);
        // dispatch keys come from job absolute deadlines, so the static
        // priority value is only DM bookkeeping (see PriorityMode docs).
        alpha = 1.0;
        runtime.set_priority_policy(deadline_monotonic_policy());
        break;
    }

    switch (cfg.admission) {
      case AdmissionMode::kExact:
        controller.emplace(sim, tracker,
                           core::FeasibleRegion::with_alpha(n, alpha));
        break;
      case AdmissionMode::kApproximate:
        controller.emplace(sim, tracker,
                           core::FeasibleRegion::with_alpha(n, alpha));
        controller->set_approximate_means(cfg.workload.mean_compute);
        break;
      case AdmissionMode::kDeadlineSplit:
        split_controller.emplace(sim, tracker);
        break;
      case AdmissionMode::kNone:
        break;
    }

    // The waiting controller's decision callback is installed by
    // run_experiment (it needs the admitted counter).
    if (cfg.patience > 0 && controller.has_value()) {
      waiting.emplace(sim, *controller, cfg.patience);
      waiting->attach();
    }

    if (cfg.observer != nullptr) {
      if (controller.has_value()) {
        controller->set_sink(&cfg.observer->sink(0));
      }
      if (cfg.observer->has_stage_observer()) {
        runtime.set_stage_observer(&cfg.observer->stage_observer());
      }
    }
  }

  // Admission decision + release for one arrival at the current time.
  void handle_arrival(const core::TaskSpec& spec) {
    ++offered;
    const Time now = sim.now();
    switch (cfg.admission) {
      case AdmissionMode::kNone:
        runtime.start_task(spec, now + spec.deadline);
        ++admitted;
        return;
      case AdmissionMode::kDeadlineSplit: {
        const auto d = split_controller->try_admit(spec, now);
        if (d.admitted) {
          ++admitted;
          runtime.start_task(spec, now + spec.deadline);
        }
        return;
      }
      case AdmissionMode::kExact:
      case AdmissionMode::kApproximate:
        break;
    }
    if (waiting.has_value()) {
      waiting->submit(spec);  // counts admitted via decision callback
      return;
    }
    const auto d = controller->try_admit(spec, now);
    if (d.admitted) {
      ++admitted;
      runtime.start_task(spec, now + spec.deadline);
    }
  }

  void schedule_next_arrival() {
    const Duration gap = gen.next_interarrival();
    const Time t = sim.now() + gap;
    if (t > cfg.sim_duration) return;  // arrivals stop; pipeline drains
    sim.at(t, [this] {
      handle_arrival(gen.next_task());
      schedule_next_arrival();
    });
  }

  const ExperimentConfig& cfg;
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen;
  core::SyntheticUtilizationTracker tracker;
  PipelineRuntime runtime;
  double alpha = 1.0;

  std::optional<core::AdmissionController> controller;
  std::optional<core::DeadlineSplitAdmissionController> split_controller;
  std::optional<core::WaitingAdmissionController> waiting;

  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
};

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  FRAP_EXPECTS(config.workload.valid());
  FRAP_EXPECTS(config.warmup >= 0 && config.warmup < config.sim_duration);

  Harness h(config);
  if (h.waiting.has_value()) {
    // Count admissions through the waiting path; deadlines stay anchored at
    // the original arrival so waiting consumes the task's own slack.
    h.waiting->set_decision_callback(
        [&h](const core::TaskSpec& spec, const core::AdmissionDecision& d) {
          if (!d.admitted) return;
          ++h.admitted;
          h.runtime.start_task(spec, d.arrival + spec.deadline);
        });
  }
  h.schedule_next_arrival();
  h.sim.run();

  ExperimentResult r;
  r.stage_utilization =
      h.runtime.stage_utilizations(config.warmup, config.sim_duration);
  for (double u : r.stage_utilization) {
    r.avg_stage_utilization += u;
    r.bottleneck_utilization = std::max(r.bottleneck_utilization, u);
  }
  r.avg_stage_utilization /= static_cast<double>(r.stage_utilization.size());
  r.offered = h.offered;
  r.admitted = h.admitted;
  r.completed = h.runtime.completed();
  r.acceptance_ratio =
      h.offered == 0 ? 0.0
                     : static_cast<double>(h.admitted) /
                           static_cast<double>(h.offered);
  r.miss_ratio = h.runtime.misses().ratio();
  r.mean_response = h.runtime.response_times().mean();
  r.events = h.sim.events_executed();
  return r;
}

}  // namespace frap::pipeline
