#include "pipeline/pipeline_runtime.h"

#include <string>

#include "sched/pooled_stage_server.h"
#include "sched/stage_server.h"
#include "util/check.h"

namespace frap::pipeline {

PriorityPolicy deadline_monotonic_policy() {
  return [](const core::TaskSpec& spec) { return spec.deadline; };
}

PipelineRuntime::PipelineRuntime(sim::Simulator& sim, std::size_t stages,
                                 core::SyntheticUtilizationTracker* tracker,
                                 const sched::SchedulingPolicy& sched_policy,
                                 std::size_t procs_per_stage)
    : sim_(sim), tracker_(tracker), policy_(deadline_monotonic_policy()) {
  FRAP_EXPECTS(stages >= 1);
  FRAP_EXPECTS(procs_per_stage >= 1);
  FRAP_EXPECTS(tracker_ == nullptr || tracker_->num_stages() == stages);
  servers_.reserve(stages);
  for (std::size_t j = 0; j < stages; ++j) {
    std::unique_ptr<sched::StageExecutor> server;
    if (procs_per_stage == 1) {
      server = std::make_unique<sched::StageServer>(
          sim_, "stage-" + std::to_string(j), sched_policy);
    } else {
      server = std::make_unique<sched::PooledStageServer>(
          sim_, procs_per_stage, "stage-" + std::to_string(j), sched_policy);
    }
    server->set_tag(j);
    server->set_listener(this);
    servers_.push_back(std::move(server));
  }
}

void PipelineRuntime::on_job_complete(sched::StageExecutor& stage,
                                      sched::Job& job) {
  on_stage_complete(stage.tag(), job);
}

void PipelineRuntime::on_stage_idle(sched::StageExecutor& stage) {
  if (tracker_ != nullptr) tracker_->on_stage_idle(stage.tag());
}

void PipelineRuntime::set_priority_policy(PriorityPolicy policy) {
  FRAP_EXPECTS(policy != nullptr);
  policy_ = std::move(policy);
}

void PipelineRuntime::set_stage_observer(obs::StageObserver* observer) {
  FRAP_EXPECTS(observer == nullptr ||
               observer->num_stages() == servers_.size());
  stage_obs_ = observer;
}

void PipelineRuntime::start_task(const core::TaskSpec& spec,
                                 Time absolute_deadline) {
  FRAP_EXPECTS(spec.valid());
  FRAP_EXPECTS(spec.num_stages() == servers_.size());
  FRAP_EXPECTS(execs_.find(spec.id) == execs_.end());

  Exec exec;
  exec.spec = spec;
  exec.release = sim_.now();
  exec.absolute_deadline = absolute_deadline;
  exec.priority = policy_(spec);
  auto [it, inserted] = execs_.emplace(spec.id, std::move(exec));
  FRAP_ASSERT(inserted);
  ++started_;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceEventKind::kRelease, spec.id);
  }
  submit_to_stage(it->second, 0);
}

void PipelineRuntime::submit_to_stage(Exec& exec, std::size_t stage) {
  exec.current_stage = stage;
  exec.stage_enter = sim_.now();
  if (stage_obs_ != nullptr) stage_obs_->on_enqueue(stage, exec.stage_enter);
  const std::uint64_t job_id = next_job_id_++;
  exec.job = std::make_unique<sched::Job>(
      job_id, exec.priority, exec.spec.stages[stage].make_segments());
  // Dynamic policies (EDF/LLF) key off the task's end-to-end absolute
  // deadline; the fixed-priority default ignores this field.
  exec.job->absolute_deadline = exec.absolute_deadline;
  job_to_task_.emplace(job_id, exec.spec.id);
  servers_[stage]->submit(*exec.job);
}

void PipelineRuntime::on_stage_complete(std::size_t stage, sched::Job& job) {
  auto jt = job_to_task_.find(job.id);
  FRAP_ASSERT(jt != job_to_task_.end());
  const std::uint64_t task_id = jt->second;
  job_to_task_.erase(jt);

  auto et = execs_.find(task_id);
  FRAP_ASSERT(et != execs_.end());
  Exec& exec = et->second;
  FRAP_ASSERT(exec.current_stage == stage);

  if (tracker_ != nullptr) tracker_->mark_departed(task_id, stage);
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceEventKind::kStageDeparture, task_id,
                   stage);
  }
  if (stage_obs_ != nullptr) {
    stage_obs_->on_depart(stage, exec.stage_enter, sim_.now());
  }

  if (stage + 1 < servers_.size()) {
    submit_to_stage(exec, stage + 1);
    return;
  }

  // End-to-end completion.
  const Duration response = sim_.now() - exec.release;
  const bool missed = sim_.now() > exec.absolute_deadline + 1e-12;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceEventKind::kComplete, task_id,
                   missed ? 1 : 0);
  }
  ++completed_;
  misses_.record(missed);
  response_.add(response);
  if (on_complete_) {
    // Move the spec out before erasing so the callback sees stable data.
    core::TaskSpec spec = std::move(exec.spec);
    execs_.erase(et);
    on_complete_(spec, response, missed);
  } else {
    execs_.erase(et);
  }
}

void PipelineRuntime::abort_task(std::uint64_t task_id) {
  auto et = execs_.find(task_id);
  if (et == execs_.end()) return;
  Exec& exec = et->second;
  if (exec.job != nullptr) {
    job_to_task_.erase(exec.job->id);
    servers_[exec.current_stage]->abort(*exec.job);
    if (stage_obs_ != nullptr) {
      // The shed task still leaves its stage queue; depart it here so the
      // observer's depth gauge conserves (enqueues == departs + in-flight).
      stage_obs_->on_depart(exec.current_stage, exec.stage_enter, sim_.now());
    }
  }
  execs_.erase(et);
  ++aborted_;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceEventKind::kShed, task_id);
  }
}

bool PipelineRuntime::task_started_executing(std::uint64_t task_id) const {
  auto it = execs_.find(task_id);
  if (it == execs_.end()) return true;  // completed or unknown: conservative
  const Exec& exec = it->second;
  if (exec.current_stage > 0) return true;
  return exec.job != nullptr && exec.job->has_started;
}

std::vector<double> PipelineRuntime::stage_utilizations(Time from,
                                                        Time to) const {
  std::vector<double> u(servers_.size());
  stage_utilizations(from, to, u);
  return u;
}

void PipelineRuntime::stage_utilizations(Time from, Time to,
                                         std::span<double> out) const {
  FRAP_EXPECTS(out.size() == servers_.size());
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    out[j] = servers_[j]->meter().utilization(from, to);
  }
}

}  // namespace frap::pipeline
