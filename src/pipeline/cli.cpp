#include "pipeline/cli.h"

#include <cstdlib>

#include "obs/clock.h"
#include "obs/observer.h"
#include "obs/prometheus.h"

namespace frap::pipeline {

namespace {

// Splits "--key=value" into key/value; flags without '=' get empty value.
bool split_flag(const std::string& arg, std::string& key,
                std::string& value) {
  if (arg.rfind("--", 0) != 0) return false;
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    key = arg.substr(2);
    value.clear();
  } else {
    key = arg.substr(2, eq - 2);
    value = arg.substr(eq + 1);
  }
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

CliParseResult parse_experiment_args(const std::vector<std::string>& args) {
  CliParseResult r;
  std::size_t stages = 2;
  double load = 1.0;
  double resolution = 100.0;
  double mean_compute_ms = 10.0;
  double imbalance = 1.0;
  double duration = 120.0;
  double warmup = 10.0;
  double patience_ms = 0.0;
  std::uint64_t seed = 1;
  auto admission = AdmissionMode::kExact;
  auto policy = PriorityMode::kDeadlineMonotonic;
  bool idle_reset = true;
  std::size_t procs = 1;
  bool procs_given = false;
  bool gedf = false;

  for (const auto& arg : args) {
    std::string key;
    std::string value;
    if (!split_flag(arg, key, value)) {
      r.error = "expected --key[=value], got: " + arg;
      return r;
    }
    double d = 0;
    std::uint64_t u = 0;
    if (key == "stages" && parse_u64(value, u) && u >= 1) {
      stages = static_cast<std::size_t>(u);
    } else if (key == "load" && parse_double(value, d) && d > 0) {
      load = d;
    } else if (key == "resolution" && parse_double(value, d) && d > 0) {
      resolution = d;
    } else if (key == "mean-compute" && parse_double(value, d) && d > 0) {
      mean_compute_ms = d;
    } else if (key == "imbalance" && parse_double(value, d) && d > 0) {
      imbalance = d;
    } else if (key == "duration" && parse_double(value, d) && d > 0) {
      duration = d;
    } else if (key == "warmup" && parse_double(value, d) && d >= 0) {
      warmup = d;
    } else if (key == "patience" && parse_double(value, d) && d >= 0) {
      patience_ms = d;
    } else if (key == "seed" && parse_u64(value, u)) {
      seed = u;
    } else if (key == "admission") {
      if (value == "exact") {
        admission = AdmissionMode::kExact;
      } else if (value == "approx") {
        admission = AdmissionMode::kApproximate;
      } else if (value == "none") {
        admission = AdmissionMode::kNone;
      } else if (value == "split") {
        admission = AdmissionMode::kDeadlineSplit;
      } else {
        r.error = "unknown admission mode: " + value;
        return r;
      }
    } else if (key == "policy") {
      if (value == "dm") {
        policy = PriorityMode::kDeadlineMonotonic;
      } else if (value == "random") {
        policy = PriorityMode::kRandom;
      } else if (value == "edf") {
        policy = PriorityMode::kEdf;
      } else if (value == "llf") {
        policy = PriorityMode::kLlf;
      } else if (value == "gedf") {
        // Global EDF: the EDF policy on pooled stages; --procs picks the
        // pool size (default 2 when not given).
        policy = PriorityMode::kEdf;
        gedf = true;
      } else {
        r.error = "unknown policy: " + value;
        return r;
      }
    } else if (key == "procs" && parse_u64(value, u) && u >= 1) {
      procs = static_cast<std::size_t>(u);
      procs_given = true;
    } else if (key == "no-idle-reset" && value.empty()) {
      idle_reset = false;
    } else {
      r.error = "unknown or malformed flag: " + arg;
      return r;
    }
  }

  if (warmup >= duration) {
    r.error = "--warmup must be smaller than --duration";
    return r;
  }

  auto& cfg = r.config;
  cfg.workload.mean_compute.assign(stages, mean_compute_ms * kMilli);
  // Imbalance skews the LAST stage's mean relative to the first.
  if (stages >= 2) {
    cfg.workload.mean_compute.back() = mean_compute_ms * kMilli * imbalance;
  }
  cfg.workload.input_load = load;
  cfg.workload.resolution = resolution;
  cfg.seed = seed;
  cfg.sim_duration = duration;
  cfg.warmup = warmup;
  cfg.admission = admission;
  cfg.priority = policy;
  cfg.idle_reset = idle_reset;
  cfg.patience = patience_ms * kMilli;
  cfg.procs_per_stage = gedf && !procs_given ? 2 : procs;
  r.ok = true;
  return r;
}

ObsCliParseResult parse_obs_args(const std::vector<std::string>& args) {
  ObsCliParseResult r;
  std::vector<std::string> experiment_args;
  for (const auto& arg : args) {
    std::string key;
    std::string value;
    if (!split_flag(arg, key, value)) {
      r.error = "expected --key[=value], got: " + arg;
      return r;
    }
    std::uint64_t u = 0;
    if (key == "format") {
      if (value == "jsonl") {
        r.config.format = ObsFormat::kJsonl;
      } else if (value == "prom") {
        r.config.format = ObsFormat::kPrometheus;
      } else {
        r.error = "unknown obs format: " + value;
        return r;
      }
    } else if (key == "out" && !value.empty()) {
      r.config.out_path = value;
    } else if (key == "ring" && parse_u64(value, u) && u >= 1) {
      r.config.ring_capacity = static_cast<std::size_t>(u);
    } else {
      experiment_args.push_back(arg);
    }
  }
  CliParseResult exp = parse_experiment_args(experiment_args);
  if (!exp.ok) {
    r.error = exp.error;
    return r;
  }
  r.config.experiment = exp.config;
  r.ok = true;
  return r;
}

int run_obs_command(const ObsCliConfig& cfg, std::ostream& os) {
  // ManualClock + sampling off: the rendered page depends only on flags and
  // seed, never on host timing, so goldens and replays stay stable.
  obs::ManualClock clock;
  obs::SinkConfig sink_cfg;
  sink_cfg.ring_capacity = cfg.ring_capacity;
  sink_cfg.latency_sample_period = 0;
  obs::Observer observer(1, sink_cfg, &clock,
                         cfg.experiment.workload.num_stages());

  ExperimentConfig ecfg = cfg.experiment;
  ecfg.observer = &observer;
  (void)run_experiment(ecfg);

  if (cfg.format == ObsFormat::kJsonl) {
    obs::render_jsonl(observer.trace(), os);
  } else {
    obs::render_prometheus(observer.snapshot(), os);
  }
  return os.good() ? 0 : 1;
}

std::string obs_cli_usage() {
  return
      "usage: experiment_cli obs [--format=jsonl|prom] [--out=PATH]\n"
      "                          [--ring=N] [experiment flags...]\n"
      "  --format=F          jsonl (decision trace, default) or prom\n"
      "                      (Prometheus text exposition)\n"
      "  --out=PATH          write to PATH instead of stdout\n"
      "  --ring=N            trace-ring capacity, rounded up to a power of\n"
      "                      two (default 65536)\n"
      "  plus any experiment flag (see `experiment_cli --help`). Only the\n"
      "  exact/approx admission modes emit decision events; stage gauges\n"
      "  render in every mode.\n";
}

std::string experiment_cli_usage() {
  return
      "usage: experiment_cli [--flag=value ...]\n"
      "  --stages=N          pipeline length (default 2)\n"
      "  --load=F            input load, fraction of stage capacity (1.0)\n"
      "  --resolution=F      mean deadline / mean total compute (100)\n"
      "  --mean-compute=MS   per-stage mean computation, ms (10)\n"
      "  --imbalance=F       last-stage mean = F * first-stage mean (1.0)\n"
      "  --duration=S        arrival horizon, seconds (120)\n"
      "  --warmup=S          measurement start, seconds (10)\n"
      "  --seed=N            RNG seed (1)\n"
      "  --admission=MODE    exact | approx | none | split (exact)\n"
      "  --policy=P          dm | random | edf | llf | gedf (dm)\n"
      "  --procs=M           processors per stage (1; gedf defaults to 2)\n"
      "  --patience=MS       waiting-admission patience, ms (0)\n"
      "  --no-idle-reset     disable the idle reset (ablation)\n";
}

}  // namespace frap::pipeline
