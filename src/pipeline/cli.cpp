#include "pipeline/cli.h"

#include <cstdlib>
#include <fstream>
#include <vector>

#include "core/feasible_region.h"
#include "ingest/ingest_session.h"
#include "ingest/trace_codec.h"
#include "ingest/wire_decoder.h"
#include "ingest/wire_encoder.h"
#include "obs/clock.h"
#include "obs/observer.h"
#include "obs/prometheus.h"
#include "service/sharded_admission.h"
#include "workload/bursty.h"
#include "workload/pipeline_workload.h"
#include "workload/replay.h"

namespace frap::pipeline {

namespace {

// Splits "--key=value" into key/value; flags without '=' get empty value.
bool split_flag(const std::string& arg, std::string& key,
                std::string& value) {
  if (arg.rfind("--", 0) != 0) return false;
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    key = arg.substr(2);
    value.clear();
  } else {
    key = arg.substr(2, eq - 2);
    value = arg.substr(eq + 1);
  }
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

CliParseResult parse_experiment_args(const std::vector<std::string>& args) {
  CliParseResult r;
  std::size_t stages = 2;
  double load = 1.0;
  double resolution = 100.0;
  double mean_compute_ms = 10.0;
  double imbalance = 1.0;
  double duration = 120.0;
  double warmup = 10.0;
  double patience_ms = 0.0;
  std::uint64_t seed = 1;
  auto admission = AdmissionMode::kExact;
  auto policy = PriorityMode::kDeadlineMonotonic;
  bool idle_reset = true;
  std::size_t procs = 1;
  bool procs_given = false;
  bool gedf = false;

  for (const auto& arg : args) {
    std::string key;
    std::string value;
    if (!split_flag(arg, key, value)) {
      r.error = "expected --key[=value], got: " + arg;
      return r;
    }
    double d = 0;
    std::uint64_t u = 0;
    if (key == "stages" && parse_u64(value, u) && u >= 1) {
      stages = static_cast<std::size_t>(u);
    } else if (key == "load" && parse_double(value, d) && d > 0) {
      load = d;
    } else if (key == "resolution" && parse_double(value, d) && d > 0) {
      resolution = d;
    } else if (key == "mean-compute" && parse_double(value, d) && d > 0) {
      mean_compute_ms = d;
    } else if (key == "imbalance" && parse_double(value, d) && d > 0) {
      imbalance = d;
    } else if (key == "duration" && parse_double(value, d) && d > 0) {
      duration = d;
    } else if (key == "warmup" && parse_double(value, d) && d >= 0) {
      warmup = d;
    } else if (key == "patience" && parse_double(value, d) && d >= 0) {
      patience_ms = d;
    } else if (key == "seed" && parse_u64(value, u)) {
      seed = u;
    } else if (key == "admission") {
      if (value == "exact") {
        admission = AdmissionMode::kExact;
      } else if (value == "approx") {
        admission = AdmissionMode::kApproximate;
      } else if (value == "none") {
        admission = AdmissionMode::kNone;
      } else if (value == "split") {
        admission = AdmissionMode::kDeadlineSplit;
      } else {
        r.error = "unknown admission mode: " + value;
        return r;
      }
    } else if (key == "policy") {
      if (value == "dm") {
        policy = PriorityMode::kDeadlineMonotonic;
      } else if (value == "random") {
        policy = PriorityMode::kRandom;
      } else if (value == "edf") {
        policy = PriorityMode::kEdf;
      } else if (value == "llf") {
        policy = PriorityMode::kLlf;
      } else if (value == "gedf") {
        // Global EDF: the EDF policy on pooled stages; --procs picks the
        // pool size (default 2 when not given).
        policy = PriorityMode::kEdf;
        gedf = true;
      } else {
        r.error = "unknown policy: " + value;
        return r;
      }
    } else if (key == "procs" && parse_u64(value, u) && u >= 1) {
      procs = static_cast<std::size_t>(u);
      procs_given = true;
    } else if (key == "no-idle-reset" && value.empty()) {
      idle_reset = false;
    } else {
      r.error = "unknown or malformed flag: " + arg;
      return r;
    }
  }

  if (warmup >= duration) {
    r.error = "--warmup must be smaller than --duration";
    return r;
  }

  auto& cfg = r.config;
  cfg.workload.mean_compute.assign(stages, mean_compute_ms * kMilli);
  // Imbalance skews the LAST stage's mean relative to the first.
  if (stages >= 2) {
    cfg.workload.mean_compute.back() = mean_compute_ms * kMilli * imbalance;
  }
  cfg.workload.input_load = load;
  cfg.workload.resolution = resolution;
  cfg.seed = seed;
  cfg.sim_duration = duration;
  cfg.warmup = warmup;
  cfg.admission = admission;
  cfg.priority = policy;
  cfg.idle_reset = idle_reset;
  cfg.patience = patience_ms * kMilli;
  cfg.procs_per_stage = gedf && !procs_given ? 2 : procs;
  r.ok = true;
  return r;
}

ObsCliParseResult parse_obs_args(const std::vector<std::string>& args) {
  ObsCliParseResult r;
  std::vector<std::string> experiment_args;
  for (const auto& arg : args) {
    std::string key;
    std::string value;
    if (!split_flag(arg, key, value)) {
      r.error = "expected --key[=value], got: " + arg;
      return r;
    }
    std::uint64_t u = 0;
    if (key == "format") {
      if (value == "jsonl") {
        r.config.format = ObsFormat::kJsonl;
      } else if (value == "prom") {
        r.config.format = ObsFormat::kPrometheus;
      } else {
        r.error = "unknown obs format: " + value;
        return r;
      }
    } else if (key == "out" && !value.empty()) {
      r.config.out_path = value;
    } else if (key == "ring" && parse_u64(value, u) && u >= 1) {
      r.config.ring_capacity = static_cast<std::size_t>(u);
    } else {
      experiment_args.push_back(arg);
    }
  }
  CliParseResult exp = parse_experiment_args(experiment_args);
  if (!exp.ok) {
    r.error = exp.error;
    return r;
  }
  r.config.experiment = exp.config;
  r.ok = true;
  return r;
}

int run_obs_command(const ObsCliConfig& cfg, std::ostream& os) {
  // ManualClock + sampling off: the rendered page depends only on flags and
  // seed, never on host timing, so goldens and replays stay stable.
  obs::ManualClock clock;
  obs::SinkConfig sink_cfg;
  sink_cfg.ring_capacity = cfg.ring_capacity;
  sink_cfg.latency_sample_period = 0;
  obs::Observer observer(1, sink_cfg, &clock,
                         cfg.experiment.workload.num_stages());

  ExperimentConfig ecfg = cfg.experiment;
  ecfg.observer = &observer;
  (void)run_experiment(ecfg);

  if (cfg.format == ObsFormat::kJsonl) {
    obs::render_jsonl(observer.trace(), os);
  } else {
    obs::render_prometheus(observer.snapshot(), os);
  }
  return os.good() ? 0 : 1;
}

std::string obs_cli_usage() {
  return
      "usage: experiment_cli obs [--format=jsonl|prom] [--out=PATH]\n"
      "                          [--ring=N] [experiment flags...]\n"
      "  --format=F          jsonl (decision trace, default) or prom\n"
      "                      (Prometheus text exposition)\n"
      "  --out=PATH          write to PATH instead of stdout\n"
      "  --ring=N            trace-ring capacity, rounded up to a power of\n"
      "                      two (default 65536)\n"
      "  plus any experiment flag (see `experiment_cli --help`). Only the\n"
      "  exact/approx admission modes emit decision events; stage gauges\n"
      "  render in every mode.\n";
}

IngestCliParseResult parse_ingest_args(const std::vector<std::string>& args) {
  IngestCliParseResult r;
  for (const auto& arg : args) {
    std::string key;
    std::string value;
    if (!split_flag(arg, key, value)) {
      r.error = "expected --key[=value], got: " + arg;
      return r;
    }
    double d = 0;
    std::uint64_t u = 0;
    if (key == "format") {
      if (value == "jsonl") {
        r.config.format = ObsFormat::kJsonl;
      } else if (value == "prom") {
        r.config.format = ObsFormat::kPrometheus;
      } else {
        r.error = "unknown ingest format: " + value;
        return r;
      }
    } else if (key == "out" && !value.empty()) {
      r.config.out_path = value;
    } else if (key == "in" && !value.empty()) {
      r.config.in_path = value;
    } else if (key == "capture" && !value.empty()) {
      r.config.capture_path = value;
    } else if (key == "count" && parse_u64(value, u) && u >= 1) {
      r.config.count = static_cast<std::size_t>(u);
    } else if (key == "stages" && parse_u64(value, u) && u >= 1) {
      r.config.stages = static_cast<std::size_t>(u);
    } else if (key == "load" && parse_double(value, d) && d > 0) {
      r.config.load = d;
    } else if (key == "resolution" && parse_double(value, d) && d > 0) {
      r.config.resolution = d;
    } else if (key == "mean-compute" && parse_double(value, d) && d > 0) {
      r.config.mean_compute_ms = d;
    } else if (key == "seed" && parse_u64(value, u)) {
      r.config.seed = u;
    } else if (key == "shards" && parse_u64(value, u) && u >= 1) {
      r.config.shards = static_cast<std::size_t>(u);
    } else if (key == "mmpp" && value.empty()) {
      r.config.mmpp = true;
    } else if (key == "ring" && parse_u64(value, u) && u >= 1) {
      r.config.ring_capacity = static_cast<std::size_t>(u);
    } else {
      r.error = "unknown or malformed flag: " + arg;
      return r;
    }
  }
  r.ok = true;
  return r;
}

int run_ingest_command(const IngestCliConfig& cfg, std::ostream& os,
                       std::ostream& err) {
  constexpr Duration kMilli = 1e-3;

  // Source the frame: a captured file, or a fresh workload capture.
  std::vector<std::byte> bytes;
  if (!cfg.in_path.empty()) {
    std::ifstream in(cfg.in_path, std::ios::binary);
    if (!in || !ingest::read_frame(in, &bytes)) {
      err << "ingest: could not read a frame from " << cfg.in_path << '\n';
      return 1;
    }
  } else {
    auto wcfg = workload::PipelineWorkloadConfig::balanced(
        cfg.stages, cfg.mean_compute_ms * kMilli, cfg.load, cfg.resolution);
    workload::PipelineWorkloadGenerator gen(wcfg, cfg.seed);
    workload::ArrivalTrace trace;
    if (cfg.mmpp) {
      workload::MmppArrivalProcess arrivals(workload::MmppArrivalProcess::Config{},
                                            cfg.seed + 1);
      trace = workload::capture_mmpp(arrivals, gen, cfg.count);
    } else {
      trace = workload::capture_poisson(gen, cfg.count);
    }
    ingest::WireEncoder enc(cfg.stages);
    const auto frame = ingest::encode_trace(trace, enc);
    bytes.assign(frame.begin(), frame.end());
  }

  if (!cfg.capture_path.empty()) {
    std::ofstream out(cfg.capture_path, std::ios::binary);
    if (!out || !ingest::write_frame(out, bytes)) {
      err << "ingest: could not write frame to " << cfg.capture_path << '\n';
      return 1;
    }
  }

  // One validation pass; untrusted bytes surface as a typed error, never UB.
  ingest::WireParse parse;
  const ingest::WireView view = ingest::WireView::open(bytes, &parse);
  if (!parse.ok()) {
    err << "ingest: invalid frame: " << ingest::wire_error_name(parse.error)
        << " at byte " << parse.offset << '\n';
    return 1;
  }

  // ManualClock + sampling off, as in run_obs_command: output depends only
  // on the flags (and the frame), never on host timing.
  obs::ManualClock clock;
  obs::SinkConfig sink_cfg;
  sink_cfg.ring_capacity = cfg.ring_capacity;
  sink_cfg.latency_sample_period = 0;
  service::ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(view.num_stages()),
      service::ShardedAdmissionConfig{.num_shards = cfg.shards});
  svc.enable_tracing(sink_cfg, &clock);

  ingest::IngestSession session(view.num_stages());
  const ingest::IngestStats st = session.admit(view, svc);
  if (!st.ok()) {
    err << "ingest: frame rejected: " << ingest::wire_error_name(st.error)
        << '\n';
    return 1;
  }

  if (cfg.format == ObsFormat::kPrometheus) {
    os << "# frap_ingest records=" << st.records << " admitted=" << st.admitted
       << " rejected=" << st.rejected << " stages=" << view.num_stages()
       << " frame_bytes=" << view.size_bytes() << '\n';
    obs::render_prometheus(svc.obs_snapshot(), os);
  } else {
    os << "{\"frap_ingest\":{\"records\":" << st.records
       << ",\"admitted\":" << st.admitted << ",\"rejected\":" << st.rejected
       << ",\"stages\":" << view.num_stages()
       << ",\"frame_bytes\":" << view.size_bytes() << "}}\n";
    obs::render_jsonl(svc.observer().trace(), os);
  }
  return os.good() ? 0 : 1;
}

std::string ingest_cli_usage() {
  return
      "usage: experiment_cli ingest [--count=N] [--stages=N] [--mmpp]\n"
      "                             [--capture=PATH] [--in=PATH]\n"
      "                             [--shards=K] [--format=prom|jsonl]\n"
      "                             [--out=PATH] [workload flags...]\n"
      "  --count=N           arrivals to generate (default 1000)\n"
      "  --stages=N          pipeline length (default 2)\n"
      "  --load=F            input load fraction (default 0.5)\n"
      "  --resolution=F      deadline / total compute ratio (100)\n"
      "  --mean-compute=MS   per-stage mean computation, ms (10)\n"
      "  --seed=N            RNG seed (1)\n"
      "  --mmpp              bursty MMPP arrivals instead of Poisson\n"
      "  --capture=PATH      also write the encoded frame to PATH\n"
      "  --in=PATH           decode PATH instead of generating (other\n"
      "                      workload flags are ignored)\n"
      "  --shards=K          sharded-service shard count (4)\n"
      "  --format=F          prom (default) or jsonl (decision trace)\n"
      "  --out=PATH          write to PATH instead of stdout\n"
      "  --ring=N            trace-ring capacity (default 65536)\n";
}

std::string experiment_cli_usage() {
  return
      "usage: experiment_cli [--flag=value ...]\n"
      "  --stages=N          pipeline length (default 2)\n"
      "  --load=F            input load, fraction of stage capacity (1.0)\n"
      "  --resolution=F      mean deadline / mean total compute (100)\n"
      "  --mean-compute=MS   per-stage mean computation, ms (10)\n"
      "  --imbalance=F       last-stage mean = F * first-stage mean (1.0)\n"
      "  --duration=S        arrival horizon, seconds (120)\n"
      "  --warmup=S          measurement start, seconds (10)\n"
      "  --seed=N            RNG seed (1)\n"
      "  --admission=MODE    exact | approx | none | split (exact)\n"
      "  --policy=P          dm | random | edf | llf | gedf (dm)\n"
      "  --procs=M           processors per stage (1; gedf defaults to 2)\n"
      "  --patience=MS       waiting-admission patience, ms (0)\n"
      "  --no-idle-reset     disable the idle reset (ablation)\n";
}

}  // namespace frap::pipeline
