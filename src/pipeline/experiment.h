// One-call experiment driver reproducing the setup of Sec. 4: Poisson
// arrivals into an N-stage pipeline, deadline-monotonic (or random-priority)
// scheduling at each stage, and a selectable admission-control mode. Every
// figure bench is a sweep over ExperimentConfig.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.h"
#include "workload/pipeline_workload.h"

namespace frap::obs {
class Observer;
}  // namespace frap::obs

namespace frap::pipeline {

enum class AdmissionMode {
  kExact,          // Sec. 4: test with the task's actual computation times
  kApproximate,    // Sec. 4.4: test with per-stage mean computation times
  kNone,           // no admission control (everything enters the pipeline)
  kDeadlineSplit,  // baseline: per-stage D/N deadlines, per-stage 0.586 test
};

enum class PriorityMode {
  kDeadlineMonotonic,  // alpha = 1
  kRandom,             // random fixed priority; alpha = D_min / D_max
  // Dynamic dispatch policies (sched/policy.h). Admission stays
  // fixed-priority-sound: the controller keeps the deadline-monotonic
  // region (alpha = 1), which EDF — optimal on a uniprocessor — meets
  // whenever deadline-monotonic does; docs/schedulers.md discusses LLF and
  // the empirical per-policy regions measured by bench/ablation_edf.
  kEdf,  // earliest absolute deadline first
  kLlf,  // least laxity first (event-driven)
};

struct ExperimentConfig {
  workload::PipelineWorkloadConfig workload;
  std::uint64_t seed = 1;

  Duration sim_duration = 200.0 * kSec;  // arrivals stop here
  Duration warmup = 20.0 * kSec;         // measurement starts here

  AdmissionMode admission = AdmissionMode::kExact;
  PriorityMode priority = PriorityMode::kDeadlineMonotonic;
  bool idle_reset = true;       // ablation A1
  Duration patience = 0;        // >0: waiting admission (Sec. 5 style)

  // Processors backing each stage. 1 (the paper's model) uses a
  // single-resource StageServer; > 1 uses a PooledStageServer under global
  // scheduling (kEdf then means gEDF). The admission region still charges
  // each stage as a single resource, so admission is conservative for
  // pooled stages.
  std::size_t procs_per_stage = 1;

  // Optional decision/stage tracing (docs/observability.md): sink 0 feeds
  // the admission controller (exact/approximate modes only) and the
  // observer's stage observer, when it has one, is wired into the runtime
  // (must then match the workload's stage count). Must outlive the run;
  // tracing never changes decisions or results.
  obs::Observer* observer = nullptr;
};

struct ExperimentResult {
  std::vector<double> stage_utilization;  // real (busy-fraction) per stage
  double avg_stage_utilization = 0;
  double bottleneck_utilization = 0;  // max over stages

  std::uint64_t offered = 0;    // arrivals generated
  std::uint64_t admitted = 0;   // accepted by admission control
  std::uint64_t completed = 0;  // finished the pipeline
  double acceptance_ratio = 0;  // admitted / offered
  double miss_ratio = 0;        // deadline misses / completed
  double mean_response = 0;     // mean end-to-end response of completed
  std::uint64_t events = 0;     // simulator events executed
};

// Runs one experiment to completion (arrivals stop at sim_duration; in-
// flight tasks drain; utilization is measured on [warmup, sim_duration]).
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace frap::pipeline
