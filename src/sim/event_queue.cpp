#include "sim/event_queue.h"

#include <algorithm>

#include "util/check.h"

namespace frap::sim {

EventId EventQueue::push(Time t, std::function<void()> fn) {
  return push_with_seq(t, next_seq_, std::move(fn));
}

EventId EventQueue::push_with_seq(Time t, std::uint64_t seq,
                                  std::function<void()> fn) {
  FRAP_EXPECTS(fn != nullptr);
  FRAP_EXPECTS(seq >= next_seq_);
  next_seq_ = seq + 1;
  const EventId id = seq;  // seq doubles as the id; both are unique
  heap_.push_back(Entry{t, seq, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  return id;
}

bool EventQueue::peek(Time& t, std::uint64_t& seq) {
  skim();
  if (heap_.empty()) return false;
  t = heap_.front().time;
  seq = heap_.front().seq;
  return true;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  // Acts only on a genuinely pending event; cancelling something that already
  // fired (or was cancelled) is a no-op.
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  pending_.erase(it);
  cancelled_.insert(id);
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  skim();
  return heap_.empty();
}

Time EventQueue::next_time() {
  skim();
  FRAP_EXPECTS(!heap_.empty());
  return heap_.front().time;
}

std::function<void()> EventQueue::pop(Time& t) {
  skim();
  FRAP_EXPECTS(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  t = e.time;
  return std::move(e.fn);
}

}  // namespace frap::sim
