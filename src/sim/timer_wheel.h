// Hierarchical timer wheel for deadline-expiry traffic.
//
// The binary-heap EventQueue is the general scheduling surface: arbitrary
// closures, O(log n) push/pop, lazy cancel. At production admission rates
// the dominant event traffic is far more regular — one expiry per admitted
// task, keyed on its absolute deadline, cancelled eagerly when the task is
// removed or shed. For that traffic a wheel is strictly better: O(1)
// schedule, O(1) cancel WITH immediate cell reclamation (no lazily-dead
// heap entries accumulating until their deadline), and no type-erased
// std::function allocation — a timer is a typed event, (client, payload),
// dispatched by a single virtual call.
//
// Layout: kLevels levels of kSlots slots each; level l buckets span
// kSlots^l ticks, so the wheel covers kSlots^kLevels ticks (the "horizon",
// ~1677 s at the default 100 us tick). Deadlines beyond the horizon sit on
// an overflow list and are pulled into the wheel when the cursor crosses a
// top-level window boundary. One 64-bit occupancy word per level makes
// "next occupied slot" a bit scan.
//
// Determinism contract (docs/perf_internals.md): every timer carries the
// exact double time it was scheduled for plus a sequence number drawn from
// the Simulator's shared counter. Ticks only ORDER coarsely; within a tick
// the due batch is sorted by (time, seq) before it fires, so the merged
// stream of wheel timers and heap events is fired in exactly the (time,
// seq) order a single binary heap would produce. Tests pin this
// (tests/timer_wheel_test.cpp).
//
// Single-threaded by design, like the rest of src/sim (frap-lint R5).
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace frap::sim {

// Opaque handle to a scheduled timer: packed (cell index + 1, generation).
// Cancelling reclaims the cell immediately; a handle held past the timer's
// fire/cancel is detected by the generation check and rejected.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

// Receiver of typed timer events. The payload is opaque to the wheel;
// trackers pack their own slot-map handles into it.
class TimerClient {
 public:
  virtual void on_timer(std::uint64_t payload) = 0;

 protected:
  ~TimerClient() = default;
};

class TimerWheel {
 public:
  static constexpr Duration kDefaultTick = 100 * kMicro;

  explicit TimerWheel(Duration tick = kDefaultTick);

  // Schedules a typed event at absolute time t with the caller-supplied
  // sequence number (the Simulator hands out one shared sequence across the
  // wheel and the heap so same-time events merge deterministically).
  // O(1); allocation-free once the cell pool is warm.
  TimerId schedule(Time t, std::uint64_t seq, TimerClient* client,
                   std::uint64_t payload);

  // Cancels a pending timer and reclaims its cell immediately. Returns
  // false (and does nothing) for already-fired, already-cancelled, or
  // stale handles. O(1).
  bool cancel(TimerId id);

  // True while a live timer with this handle is pending.
  [[nodiscard]] bool pending(TimerId id) const;

  // Earliest pending timer's (time, seq); false when empty. Non-mutating
  // apart from an internal memo; repeated peeks are O(1).
  bool peek(Time& t, std::uint64_t& seq);

  // Exact quiescence test: true iff no pending timer fires at or before t.
  // Unlike peek() it usually answers from a tick lower bound derived from
  // the occupancy words alone (O(kLevels) bit scans, no cell-list walk),
  // paying for the exact earliest scan only when a timer might be due —
  // the horizon check Simulator::run_until makes once per advance.
  bool none_at_or_before(Time t);

  // Moves the wheel clock to t. REQUIRES no timer pending at or before t
  // (i.e. none_at_or_before(t) just returned true). Called by run_until
  // after a quiescent advance so pending timers stay in low levels
  // relative to the cursor and the occupancy bound stays tight even when
  // nothing ever fires (cancel-only workloads).
  void advance_clock(Time t);

  // Removes the earliest pending timer (by (time, seq)) and reports it.
  // Requires a pending timer. Same-tick timers are batched: the whole slot
  // is moved into a sorted due buffer once, so a burst of k same-tick
  // expiries drains in O(k log k) total instead of O(k^2).
  void pop(Time& t, TimerClient*& client, std::uint64_t& payload);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] Duration tick() const { return tick_; }

  // Timers currently parked beyond the wheel horizon (observability; the
  // overflow spill test uses it).
  [[nodiscard]] std::size_t overflow_size() const { return overflow_count_; }

 private:
  static constexpr std::uint32_t kSlotBits = 6;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;     // 64
  static constexpr std::uint32_t kLevels = 4;
  static constexpr std::uint32_t kWheelBits = kSlotBits * kLevels;  // 24
  static constexpr std::uint32_t kNil = 0xffffffffu;
  // Ticks are clamped here so the double->integer conversion is always in
  // range; clamped timers simply live on the overflow list forever and are
  // still fired at their exact recorded time.
  static constexpr std::uint64_t kMaxTick = std::uint64_t{1} << 62;

  // Where a cell currently lives.
  enum class Loc : std::uint8_t { kFree, kSlot, kOverflow, kDue };

  struct Cell {
    Time time = 0;
    std::uint64_t seq = 0;
    std::uint64_t payload = 0;
    TimerClient* client = nullptr;
    std::uint32_t gen = 0;  // bumped on every free; stale handles mismatch
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    Loc loc = Loc::kFree;
    std::uint8_t level = 0;
    std::uint16_t slot = 0;
  };

  struct DueEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t cell;
    std::uint32_t gen;
  };

  std::uint64_t tick_of(Time t) const;
  std::uint32_t alloc_cell();
  void free_cell(std::uint32_t idx);
  // Links an in-horizon cell into its (level, slot) list for `tick`.
  void place(std::uint32_t idx, std::uint64_t tick);
  void link_overflow(std::uint32_t idx);
  void unlink(std::uint32_t idx);
  // Moves the cursor to `tick`, cascading every crossed higher-level slot
  // down and re-pulling overflow timers when a top-level window boundary is
  // crossed. Crossed level-0 slots must be empty (the caller only advances
  // to the earliest pending tick).
  void advance_to(std::uint64_t tick);
  // Moves the cursor slot's remaining cells into the sorted due buffer.
  void collect_cursor_slot();
  // Recomputes the earliest-pending memo. Returns false when empty.
  bool find_earliest();

  Duration tick_;
  double inv_tick_;
  std::uint64_t cur_tick_ = 0;

  std::vector<Cell> cells_;
  std::vector<std::uint32_t> free_cells_;
  std::size_t live_ = 0;

  std::uint32_t head_[kLevels][kSlots];
  std::uint64_t occupancy_[kLevels] = {0, 0, 0, 0};
  std::uint32_t overflow_head_ = kNil;
  std::size_t overflow_count_ = 0;

  // Sorted (time, seq) batch for the cursor tick; drained front-to-back.
  std::vector<DueEntry> due_;
  std::size_t due_next_ = 0;
  std::vector<std::uint32_t> cascade_scratch_;

  // Earliest-pending memo, invalidated by any mutation.
  bool memo_valid_ = false;
  bool memo_due_ = false;       // earliest is due_[due_next_]
  bool memo_overflow_ = false;  // earliest is an overflow cell
  std::uint32_t memo_cell_ = kNil;
  Time memo_time_ = 0;
  std::uint64_t memo_seq_ = 0;
};

}  // namespace frap::sim
