// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence number). The sequence number makes
// same-time events fire in scheduling order, which keeps simulations fully
// deterministic. Cancellation is lazy: cancelled entries stay in the heap
// and are discarded on pop, which keeps cancel() O(1) — preemptive
// schedulers cancel completion events constantly.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace frap::sim {

// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Schedules fn at absolute time t. Returns a handle for cancellation.
  EventId push(Time t, std::function<void()> fn);

  // Schedules fn with a caller-supplied sequence number. The Simulator owns
  // one shared sequence across this heap and the TimerWheel so same-time
  // events from either source merge in scheduling order. `seq` must be at
  // least as large as any sequence number this queue has handed out (the
  // internal counter is advanced past it, so plain push() stays unique).
  EventId push_with_seq(Time t, std::uint64_t seq, std::function<void()> fn);

  // Earliest live event's (time, seq); false when empty.
  bool peek(Time& t, std::uint64_t& seq);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a harmless no-op, so callers need not track firing themselves.
  void cancel(EventId id);

  bool empty();

  // Time of the earliest live event. Requires !empty().
  Time next_time();

  // Removes and returns the earliest live event's action. Requires !empty().
  // Also reports the event's time through `t`.
  std::function<void()> pop(Time& t);

  // Live (non-cancelled) events still pending.
  std::size_t size() const { return pending_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries from the heap top.
  void skim();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;    // scheduled and not yet fired
  std::unordered_set<EventId> cancelled_;  // lazily removed from heap_
  std::uint64_t next_seq_ = 1;
};

}  // namespace frap::sim
