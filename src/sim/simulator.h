// Deterministic discrete-event simulator.
//
// The simulator advances a virtual clock from event to event. Components
// (stage servers, workload generators, admission controllers) interact only
// through scheduled callbacks, so a whole experiment is a single-threaded,
// perfectly reproducible computation.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "util/time.h"

namespace frap::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Starts at 0.
  Time now() const { return now_; }

  // Schedules fn at absolute time t (>= now()).
  EventId at(Time t, std::function<void()> fn);

  // Schedules fn after a non-negative delay.
  EventId after(Duration d, std::function<void()> fn);

  // Cancels a pending event (no-op if it already fired or was cancelled).
  void cancel(EventId id) { queue_.cancel(id); }

  // Runs until the event queue drains.
  void run();

  // Runs events with time <= t, then sets the clock to exactly t.
  // Events scheduled at exactly t DO fire.
  void run_until(Time t);

  // Executes at most `n` further events (for tests); returns how many ran.
  std::size_t step(std::size_t n = 1);

  // Events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  std::size_t pending_events() { return queue_.size(); }

 private:
  void dispatch_next();

  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
};

}  // namespace frap::sim
