// Deterministic discrete-event simulator.
//
// The simulator advances a virtual clock from event to event. Components
// (stage servers, workload generators, admission controllers) interact only
// through scheduled callbacks, so a whole experiment is a single-threaded,
// perfectly reproducible computation.
//
// Two scheduling surfaces share one clock and one sequence counter:
//   * at()/after() — arbitrary closures on a binary-heap EventQueue
//     (O(log n), lazy cancel);
//   * timer_at() — typed, allocation-free timers on a hierarchical
//     TimerWheel (O(1) schedule, O(1) cancel with immediate reclamation),
//     used for the dominant deadline-expiry traffic.
// Because both draw sequence numbers from the same counter and dispatch
// merges them by (time, seq), the firing order is exactly what a single
// queue would produce (docs/perf_internals.md).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/timer_wheel.h"
#include "util/time.h"

namespace frap::sim {

class Simulator {
 public:
  Simulator() = default;
  // Overrides the timer-wheel tick (tests exercising wheel granularity).
  explicit Simulator(Duration timer_tick) : wheel_(timer_tick) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Starts at 0.
  Time now() const { return now_; }

  // Schedules fn at absolute time t (>= now()).
  EventId at(Time t, std::function<void()> fn);

  // Schedules fn after a non-negative delay.
  EventId after(Duration d, std::function<void()> fn);

  // Cancels a pending event (no-op if it already fired or was cancelled).
  void cancel(EventId id) { queue_.cancel(id); }

  // Schedules a typed timer at absolute time t (>= now()). O(1) and
  // allocation-free once the wheel's cell pool is warm.
  TimerId timer_at(Time t, TimerClient* client, std::uint64_t payload);

  // Cancels a pending timer, reclaiming its wheel cell immediately.
  // Returns false for already-fired / already-cancelled / stale handles.
  bool cancel_timer(TimerId id) { return wheel_.cancel(id); }

  // True while the timer is still pending.
  [[nodiscard]] bool timer_pending(TimerId id) const {
    return wheel_.pending(id);
  }

  // Read-only wheel access (tests pin overflow/occupancy behavior).
  const TimerWheel& timer_wheel() const { return wheel_; }

  // Runs until both the event queue and the timer wheel drain.
  void run();

  // Runs events with time <= t, then sets the clock to exactly t.
  // Events scheduled at exactly t DO fire.
  void run_until(Time t);

  // Executes at most `n` further events (for tests); returns how many ran.
  std::size_t step(std::size_t n = 1);

  // Earliest pending event/timer time, or +infinity when both surfaces are
  // idle. Always > now() right after run_until(now()). Not const: peeking
  // the heap prunes lazily-cancelled entries and the wheel memoizes its
  // scan. Used by the sharded service's lock-free fast path to publish a
  // staleness horizon: a decision taken strictly before this instant sees
  // exactly the state the exact path would (no expiry can fire in between).
  Time next_event_at();

  // Events executed since construction (closures and timers).
  std::uint64_t events_executed() const { return executed_; }

  std::size_t pending_events() { return queue_.size() + wheel_.size(); }

 private:
  void dispatch_next();
  // Earliest pending (time) across the queue and the wheel; false if both
  // are empty.
  bool next_event_time(Time& t);

  EventQueue queue_;
  TimerWheel wheel_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
  // Shared sequence counter across the heap and the wheel (see file header).
  std::uint64_t next_seq_ = 1;
};

}  // namespace frap::sim
