#include "sim/simulator.h"

#include "util/check.h"

namespace frap::sim {

EventId Simulator::at(Time t, std::function<void()> fn) {
  FRAP_EXPECTS(t >= now_);
  return queue_.push(t, std::move(fn));
}

EventId Simulator::after(Duration d, std::function<void()> fn) {
  FRAP_EXPECTS(d >= 0);
  return queue_.push(now_ + d, std::move(fn));
}

void Simulator::dispatch_next() {
  Time t = kTimeZero;
  auto fn = queue_.pop(t);
  FRAP_ASSERT(t >= now_);
  now_ = t;
  ++executed_;
  fn();
}

void Simulator::run() {
  while (!queue_.empty()) dispatch_next();
}

void Simulator::run_until(Time t) {
  FRAP_EXPECTS(t >= now_);
  while (!queue_.empty() && queue_.next_time() <= t) dispatch_next();
  now_ = t;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && !queue_.empty()) {
    dispatch_next();
    ++ran;
  }
  return ran;
}

}  // namespace frap::sim
