#include "sim/simulator.h"

#include <algorithm>

#include "util/check.h"
#include "util/math.h"

namespace frap::sim {

EventId Simulator::at(Time t, std::function<void()> fn) {
  FRAP_EXPECTS(t >= now_);
  return queue_.push_with_seq(t, next_seq_++, std::move(fn));
}

EventId Simulator::after(Duration d, std::function<void()> fn) {
  FRAP_EXPECTS(d >= 0);
  return queue_.push_with_seq(now_ + d, next_seq_++, std::move(fn));
}

TimerId Simulator::timer_at(Time t, TimerClient* client,
                            std::uint64_t payload) {
  FRAP_EXPECTS(t >= now_);
  return wheel_.schedule(t, next_seq_++, client, payload);
}

void Simulator::dispatch_next() {
  Time qt = kTimeZero;
  std::uint64_t qseq = 0;
  const bool have_q = queue_.peek(qt, qseq);
  Time wt = kTimeZero;
  std::uint64_t wseq = 0;
  const bool have_w = wheel_.peek(wt, wseq);
  FRAP_ASSERT(have_q || have_w);
  const bool wheel_first =
      have_w && (!have_q || wt < qt || (wt == qt && wseq < qseq));
  if (wheel_first) {
    Time t = kTimeZero;
    TimerClient* client = nullptr;
    std::uint64_t payload = 0;
    wheel_.pop(t, client, payload);
    FRAP_ASSERT(t >= now_);
    now_ = t;
    ++executed_;
    client->on_timer(payload);
  } else {
    Time t = kTimeZero;
    auto fn = queue_.pop(t);
    FRAP_ASSERT(t >= now_);
    now_ = t;
    ++executed_;
    fn();
  }
}

bool Simulator::next_event_time(Time& t) {
  Time qt = kTimeZero;
  std::uint64_t qseq = 0;
  const bool have_q = queue_.peek(qt, qseq);
  Time wt = kTimeZero;
  std::uint64_t wseq = 0;
  const bool have_w = wheel_.peek(wt, wseq);
  if (!have_q && !have_w) return false;
  t = have_q && have_w ? std::min(qt, wt) : (have_q ? qt : wt);
  return true;
}

Time Simulator::next_event_at() {
  Time t = kTimeZero;
  if (!next_event_time(t)) return util::kInf;
  return t;
}

void Simulator::run() {
  while (!queue_.empty() || !wheel_.empty()) dispatch_next();
}

void Simulator::run_until(Time t) {
  FRAP_EXPECTS(t >= now_);
  // Same loop condition as `while (next_event_time(next) && next <= t)`,
  // but probing the wheel through its cheap quiescence test instead of
  // forcing the exact earliest-timer scan on every advance: when nothing
  // is due by t (the common case under cancel-heavy shedding, where the
  // memo dies every cycle), the wheel answers from its occupancy bits.
  while (true) {
    Time qt = kTimeZero;
    std::uint64_t qseq = 0;
    const bool queue_due = queue_.peek(qt, qseq) && qt <= t;
    if (!queue_due && wheel_.none_at_or_before(t)) break;
    dispatch_next();
  }
  now_ = t;
  // Quiescent up to t: drag the wheel clock along so pending timers stay
  // in low levels relative to the cursor (see TimerWheel::advance_clock).
  wheel_.advance_clock(t);
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && (!queue_.empty() || !wheel_.empty())) {
    dispatch_next();
    ++ran;
  }
  return ran;
}

}  // namespace frap::sim
