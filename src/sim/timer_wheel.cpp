#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace frap::sim {

namespace {

constexpr std::uint32_t kIndexMask = 0xffffffffu;

constexpr TimerId pack_id(std::uint32_t idx, std::uint32_t gen) {
  return (static_cast<TimerId>(gen) << 32) | (idx + 1u);
}

// A set bitmask over slot numbers [lo, hi); hi <= 64.
constexpr std::uint64_t slot_mask(std::uint32_t lo, std::uint32_t hi) {
  const std::uint64_t upto_hi =
      hi >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << hi) - 1;
  return upto_hi & (~std::uint64_t{0} << lo);
}

}  // namespace

TimerWheel::TimerWheel(Duration tick) : tick_(tick), inv_tick_(1.0 / tick) {
  FRAP_EXPECTS(tick > 0 && std::isfinite(tick));
  for (auto& level : head_) {
    for (auto& h : level) h = kNil;
  }
}

std::uint64_t TimerWheel::tick_of(Time t) const {
  FRAP_EXPECTS(t >= 0);
  const double ticks = t * inv_tick_;
  if (!(ticks < static_cast<double>(kMaxTick))) return kMaxTick;
  return static_cast<std::uint64_t>(ticks);
}

std::uint32_t TimerWheel::alloc_cell() {
  if (!free_cells_.empty()) {
    const std::uint32_t idx = free_cells_.back();
    free_cells_.pop_back();
    return idx;
  }
  FRAP_ASSERT(cells_.size() < kIndexMask);
  cells_.push_back(Cell{});
  // The 0-alloc steady-state invariant: every auxiliary vector that takes
  // push_backs on the free/collect hot paths is kept at capacity >= the
  // total cell count (their sizes are bounded by it), so growth only ever
  // happens here, on the cold pool-extension path. Matching cells_'s
  // geometric capacity keeps the reserves amortized O(1) per cell.
  free_cells_.reserve(cells_.capacity());
  due_.reserve(cells_.capacity());
  cascade_scratch_.reserve(cells_.capacity());
  return static_cast<std::uint32_t>(cells_.size() - 1);
}

void TimerWheel::free_cell(std::uint32_t idx) {
  Cell& c = cells_[idx];
  ++c.gen;  // any outstanding handle or due entry becomes stale
  c.loc = Loc::kFree;
  c.client = nullptr;
  free_cells_.push_back(idx);
}

void TimerWheel::place(std::uint32_t idx, std::uint64_t tick) {
  FRAP_ASSERT(tick >= cur_tick_);
  FRAP_ASSERT((tick >> kWheelBits) == (cur_tick_ >> kWheelBits));
  const std::uint64_t diff = tick ^ cur_tick_;
  const std::uint32_t level =
      diff == 0 ? 0u
                : (static_cast<std::uint32_t>(std::bit_width(diff)) - 1u) /
                      kSlotBits;
  FRAP_ASSERT(level < kLevels);
  const auto slot = static_cast<std::uint32_t>(
      (tick >> (kSlotBits * level)) & (kSlots - 1));
  Cell& c = cells_[idx];
  c.loc = Loc::kSlot;
  c.level = static_cast<std::uint8_t>(level);
  c.slot = static_cast<std::uint16_t>(slot);
  c.prev = kNil;
  c.next = head_[level][slot];
  if (c.next != kNil) cells_[c.next].prev = idx;
  head_[level][slot] = idx;
  occupancy_[level] |= std::uint64_t{1} << slot;
}

void TimerWheel::link_overflow(std::uint32_t idx) {
  Cell& c = cells_[idx];
  c.loc = Loc::kOverflow;
  c.prev = kNil;
  c.next = overflow_head_;
  if (c.next != kNil) cells_[c.next].prev = idx;
  overflow_head_ = idx;
  ++overflow_count_;
}

void TimerWheel::unlink(std::uint32_t idx) {
  Cell& c = cells_[idx];
  FRAP_ASSERT(c.loc == Loc::kSlot || c.loc == Loc::kOverflow);
  if (c.next != kNil) cells_[c.next].prev = c.prev;
  if (c.prev != kNil) {
    cells_[c.prev].next = c.next;
  } else if (c.loc == Loc::kOverflow) {
    overflow_head_ = c.next;
  } else {
    head_[c.level][c.slot] = c.next;
    if (c.next == kNil) {
      occupancy_[c.level] &= ~(std::uint64_t{1} << c.slot);
    }
  }
  if (c.loc == Loc::kOverflow) --overflow_count_;
  c.next = kNil;
  c.prev = kNil;
}

TimerId TimerWheel::schedule(Time t, std::uint64_t seq, TimerClient* client,
                             std::uint64_t payload) {
  FRAP_EXPECTS(client != nullptr);
  const std::uint64_t tick = tick_of(t);
  FRAP_EXPECTS(tick >= cur_tick_);
  const std::uint32_t idx = alloc_cell();
  Cell& c = cells_[idx];
  c.time = t;
  c.seq = seq;
  c.payload = payload;
  c.client = client;
  if ((tick >> kWheelBits) != (cur_tick_ >> kWheelBits)) {
    link_overflow(idx);
  } else {
    place(idx, tick);
  }
  ++live_;
  // The memo survives unless the newcomer is the new earliest.
  if (memo_valid_ &&
      (t > memo_time_ || (t == memo_time_ && seq > memo_seq_))) {
    // keep memo
  } else {
    memo_valid_ = false;
  }
  return pack_id(idx, c.gen);
}

bool TimerWheel::cancel(TimerId id) {
  const std::uint32_t raw = static_cast<std::uint32_t>(id & kIndexMask);
  if (raw == 0) return false;
  const std::uint32_t idx = raw - 1;
  if (idx >= cells_.size()) return false;
  Cell& c = cells_[idx];
  if (c.gen != static_cast<std::uint32_t>(id >> 32) || c.loc == Loc::kFree) {
    return false;  // stale handle: already fired, cancelled, or reused
  }
  if (c.loc != Loc::kDue) unlink(idx);
  // Due entries stay in the buffer; the generation bump below makes them
  // stale and the drain skips them.
  free_cell(idx);
  --live_;
  // Cancelling anything but the memoized earliest cannot change which timer
  // is earliest, so the memo survives. (While the memo is valid its cell is
  // live — every pop and every cancel of that cell invalidates it — so the
  // index comparison cannot alias a reused cell.)
  if (memo_valid_ && idx == memo_cell_) memo_valid_ = false;
  return true;
}

bool TimerWheel::pending(TimerId id) const {
  const std::uint32_t raw = static_cast<std::uint32_t>(id & kIndexMask);
  if (raw == 0) return false;
  const std::uint32_t idx = raw - 1;
  if (idx >= cells_.size()) return false;
  const Cell& c = cells_[idx];
  return c.gen == static_cast<std::uint32_t>(id >> 32) && c.loc != Loc::kFree;
}

bool TimerWheel::find_earliest() {
  memo_valid_ = false;
  memo_due_ = false;
  memo_overflow_ = false;
  memo_cell_ = kNil;
  if (live_ == 0) return false;

  bool have = false;
  // Due buffer first: skip entries whose cell was cancelled (stale gen).
  while (due_next_ < due_.size()) {
    const DueEntry& e = due_[due_next_];
    if (cells_[e.cell].gen == e.gen) break;
    ++due_next_;
  }
  if (due_next_ < due_.size()) {
    const DueEntry& e = due_[due_next_];
    memo_time_ = e.time;
    memo_seq_ = e.seq;
    memo_cell_ = e.cell;
    memo_due_ = true;
    have = true;
  } else if (!due_.empty()) {
    due_.clear();
    due_next_ = 0;
  }

  // First occupied wheel level; every entry of level l precedes every entry
  // of level l+1 (window invariant, docs/perf_internals.md), so one level's
  // first occupied slot holds the wheel's earliest entry.
  for (std::uint32_t l = 0; l < kLevels; ++l) {
    std::uint64_t mask = occupancy_[l];
    const auto cur_slot = static_cast<std::uint32_t>(
        (cur_tick_ >> (kSlotBits * l)) & (kSlots - 1));
    mask &= ~std::uint64_t{0} << cur_slot;
    FRAP_ASSERT(mask == occupancy_[l]);  // nothing lingers behind the cursor
    if (mask == 0) continue;
    const auto slot = static_cast<std::uint32_t>(std::countr_zero(mask));
    for (std::uint32_t i = head_[l][slot]; i != kNil; i = cells_[i].next) {
      const Cell& c = cells_[i];
      if (!have || c.time < memo_time_ ||
          (c.time == memo_time_ && c.seq < memo_seq_)) {
        memo_time_ = c.time;
        memo_seq_ = c.seq;
        memo_cell_ = i;
        memo_due_ = false;
        have = true;
      }
    }
    break;
  }

  // Overflow timers are strictly later than every in-wheel timer, so the
  // list only needs scanning when nothing else is pending.
  if (!have) {
    for (std::uint32_t i = overflow_head_; i != kNil; i = cells_[i].next) {
      const Cell& c = cells_[i];
      if (!have || c.time < memo_time_ ||
          (c.time == memo_time_ && c.seq < memo_seq_)) {
        memo_time_ = c.time;
        memo_seq_ = c.seq;
        memo_cell_ = i;
        memo_overflow_ = true;
        have = true;
      }
    }
  }

  FRAP_ASSERT(have);  // live_ > 0 implies something is findable
  memo_valid_ = true;
  return true;
}

bool TimerWheel::peek(Time& t, std::uint64_t& seq) {
  if (live_ == 0) return false;
  if (!memo_valid_) find_earliest();
  t = memo_time_;
  seq = memo_seq_;
  return true;
}

bool TimerWheel::none_at_or_before(Time t) {
  if (live_ == 0) return true;
  if (memo_valid_) return memo_time_ > t;

  // Cheap rejection before paying for an exact find_earliest(): derive a
  // lower bound on the earliest pending TICK from the due head, the
  // occupancy words, and the overflow window — a handful of bit scans, no
  // cell-list walk. This is what keeps shed-heavy steady states O(1):
  // removing a task cancels the earliest pending timer (oldest admission,
  // nearest deadline) and so invalidates the memo every cycle, but the
  // earliest survivor sits in a far-future high-level slot whose cell list
  // can be thousands long. The bound answers "nothing can fire by t"
  // without ever touching that list; the exact scan runs only when a timer
  // might genuinely be due.
  while (due_next_ < due_.size() &&
         cells_[due_[due_next_].cell].gen != due_[due_next_].gen) {
    ++due_next_;  // cancelled while parked in the batch
  }
  if (due_next_ < due_.size()) {
    // The due batch precedes everything still in the wheel or overflow and
    // is sorted, so its head is the exact earliest.
    return due_[due_next_].time > t;
  }

  std::uint64_t lb = kMaxTick;
  bool in_wheel = false;
  for (std::uint32_t l = 0; l < kLevels; ++l) {
    const std::uint64_t mask = occupancy_[l];
    if (mask == 0) continue;
    // Occupied slots never lag the cursor (find_earliest asserts this), so
    // the first set bit is in the cursor's rotation and the slot's start
    // tick lower-bounds every cell parked in it; lower levels precede
    // higher ones (window invariant), so the first occupied level decides.
    const auto slot = static_cast<std::uint32_t>(std::countr_zero(mask));
    const std::uint64_t base = (cur_tick_ >> (kSlotBits * l)) &
                               ~static_cast<std::uint64_t>(kSlots - 1);
    lb = (base | slot) << (kSlotBits * l);
    in_wheel = true;
    break;
  }
  if (!in_wheel) {
    FRAP_ASSERT(overflow_count_ > 0);  // live_ > 0 and the wheel is empty
    lb = ((cur_tick_ >> kWheelBits) + 1) << kWheelBits;
  }
  // Tick comparison is exact in one direction: a pending tick strictly
  // after t's tick means a fire time strictly after t (tick_of is
  // monotone). The converse is not decidable from ticks alone, so fall
  // back to the exact scan.
  if (lb > tick_of(t)) return true;
  find_earliest();
  return memo_time_ > t;
}

void TimerWheel::advance_clock(Time t) {
  const std::uint64_t tick = tick_of(t);
  if (tick <= cur_tick_ || tick >= kMaxTick) return;
  // Precondition (caller-checked via none_at_or_before): nothing pending at
  // or before t, so every crossed level-0 slot is empty and advance_to's
  // invariant holds. Keeping the cursor abreast of simulated time keeps
  // pending timers in LOW levels relative to it — without this, a workload
  // that only ever cancels (pure shedding) would pin the cursor while time
  // runs away, every timer would degrade to the widest level, and the
  // occupancy lower bound would fall uselessly behind the query tick.
  advance_to(tick);
}

void TimerWheel::advance_to(std::uint64_t tick) {
  FRAP_ASSERT(tick >= cur_tick_);
  if (tick == cur_tick_) return;

  // Level-0 slots strictly before `tick` must be empty: the cursor only
  // ever advances to the earliest pending tick.
  const auto new_slot0 =
      static_cast<std::uint32_t>(tick & (kSlots - 1));
  const auto cur_slot0 =
      static_cast<std::uint32_t>(cur_tick_ & (kSlots - 1));
  if ((tick >> kSlotBits) == (cur_tick_ >> kSlotBits)) {
    FRAP_ASSERT((occupancy_[0] & slot_mask(cur_slot0, new_slot0)) == 0);
  } else {
    FRAP_ASSERT(occupancy_[0] == 0);
  }

  // Collect every crossed higher-level slot; its cells re-place relative to
  // the new cursor (cascading down one or more levels).
  cascade_scratch_.clear();
  for (std::uint32_t l = 1; l < kLevels; ++l) {
    const std::uint64_t old_i = cur_tick_ >> (kSlotBits * l);
    const std::uint64_t new_i = tick >> (kSlotBits * l);
    if (old_i == new_i) break;  // higher levels see no boundary
    const std::uint64_t count = new_i - old_i;  // crossed: old_i+1 .. new_i
    std::uint64_t mask;
    if (count >= kSlots) {
      mask = ~std::uint64_t{0};
    } else {
      const auto lo = static_cast<std::uint32_t>((old_i + 1) & (kSlots - 1));
      const auto n = static_cast<std::uint32_t>(count);
      mask = lo + n <= kSlots
                 ? slot_mask(lo, lo + n)
                 : (slot_mask(lo, kSlots) | slot_mask(0, lo + n - kSlots));
    }
    std::uint64_t hit = occupancy_[l] & mask;
    while (hit != 0) {
      const auto slot = static_cast<std::uint32_t>(std::countr_zero(hit));
      hit &= hit - 1;
      while (head_[l][slot] != kNil) {
        const std::uint32_t idx = head_[l][slot];
        unlink(idx);
        cascade_scratch_.push_back(idx);
      }
    }
  }

  const std::uint64_t old_top = cur_tick_ >> kWheelBits;
  cur_tick_ = tick;

  for (const std::uint32_t idx : cascade_scratch_) {
    place(idx, tick_of(cells_[idx].time));
  }
  cascade_scratch_.clear();

  if ((cur_tick_ >> kWheelBits) != old_top) {
    // New top-level window: pull overflow timers that now fit the wheel.
    std::uint32_t i = overflow_head_;
    while (i != kNil) {
      const std::uint32_t next = cells_[i].next;
      const std::uint64_t cell_tick = tick_of(cells_[i].time);
      if ((cell_tick >> kWheelBits) == (cur_tick_ >> kWheelBits)) {
        unlink(i);
        place(i, cell_tick);
      }
      i = next;
    }
  }
}

void TimerWheel::collect_cursor_slot() {
  const auto slot = static_cast<std::uint32_t>(cur_tick_ & (kSlots - 1));
  while (head_[0][slot] != kNil) {
    const std::uint32_t idx = head_[0][slot];
    unlink(idx);
    Cell& c = cells_[idx];
    c.loc = Loc::kDue;
    due_.push_back(DueEntry{c.time, c.seq, idx, c.gen});
  }
  // Typical slots hold a handful of timers; std::sort's fixed set-up cost
  // dominates at those sizes, so run a straight insertion sort below a
  // small threshold. Both produce the one total (time, seq) order, so the
  // fired sequence is identical either way.
  const auto cmp = [](const DueEntry& a, const DueEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  };
  DueEntry* const first = due_.data() + due_next_;
  DueEntry* const last = due_.data() + due_.size();
  if (last - first > 16) {
    std::sort(first, last, cmp);
    return;
  }
  for (DueEntry* it = first + 1; it < last; ++it) {
    DueEntry e = *it;
    DueEntry* j = it;
    for (; j > first && cmp(e, *(j - 1)); --j) *j = *(j - 1);
    *j = e;
  }
}

void TimerWheel::pop(Time& t, TimerClient*& client, std::uint64_t& payload) {
  FRAP_EXPECTS(live_ > 0);
  if (!memo_valid_) find_earliest();

  if (!memo_due_) {
    const std::uint32_t idx = memo_cell_;
    const std::uint64_t tick = tick_of(cells_[idx].time);
    if (memo_overflow_ && tick >= kMaxTick) {
      // Beyond representable ticks: fire straight off the overflow list.
      Cell& c = cells_[idx];
      t = c.time;
      client = c.client;
      payload = c.payload;
      unlink(idx);
      free_cell(idx);
      --live_;
      memo_valid_ = false;
      return;
    }
    // Advance (cascading, and pulling overflow in when a top window opens),
    // then batch the whole now-current slot into the sorted due buffer.
    advance_to(tick);
    collect_cursor_slot();
  }

  while (due_next_ < due_.size() &&
         cells_[due_[due_next_].cell].gen != due_[due_next_].gen) {
    ++due_next_;  // cancelled while parked in the batch
  }
  FRAP_ASSERT(due_next_ < due_.size());
  const DueEntry e = due_[due_next_++];
  Cell& c = cells_[e.cell];
  FRAP_ASSERT(c.loc == Loc::kDue);
  t = c.time;
  client = c.client;
  payload = c.payload;
  free_cell(e.cell);
  --live_;
  if (due_next_ == due_.size()) {
    due_.clear();
    due_next_ = 0;
  }
  memo_valid_ = false;
}

}  // namespace frap::sim
