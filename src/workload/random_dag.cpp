#include "workload/random_dag.h"

#include <algorithm>

#include "util/check.h"

namespace frap::workload {

using core::GraphEdge;
using core::GraphNode;
using core::GraphTaskSpec;

namespace {

GraphNode random_node(util::Rng& rng, const RandomDagConfig& cfg) {
  GraphNode n;
  n.resource = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(cfg.num_resources) - 1));
  n.demand.compute = rng.uniform(cfg.min_compute, cfg.max_compute);
  return n;
}

void layered_edges(util::Rng& rng, const RandomDagConfig& cfg,
                   GraphTaskSpec& g) {
  const std::size_t n = cfg.num_nodes;
  const std::size_t layers = std::min(
      n, static_cast<std::size_t>(rng.uniform_int(
             static_cast<std::int64_t>(std::max<std::size_t>(1, cfg.min_layers)),
             static_cast<std::int64_t>(
                 std::max(cfg.min_layers, cfg.max_layers)))));
  // layer_of is nondecreasing in node index, so edges to later layers only
  // ever point at higher indices: acyclic by construction.
  std::vector<std::size_t> layer_start(layers + 1);
  for (std::size_t l = 0; l <= layers; ++l) {
    layer_start[l] = l * n / layers;
  }
  std::vector<std::size_t> layer_of(n);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t v = layer_start[l]; v < layer_start[l + 1]; ++v) {
      layer_of[v] = l;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t l = layer_of[v];
    if (l > 0) {
      // Guaranteed predecessor in the previous layer keeps every non-source
      // reachable (paths span all layers — long paths exist to find).
      const std::size_t lo = layer_start[l - 1];
      const std::size_t hi = layer_start[l] - 1;
      const auto p = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo),
                          static_cast<std::int64_t>(hi)));
      g.edges.push_back(GraphEdge{p, v});
    }
    if (l + 1 < layers && cfg.extra_edge_prob > 0) {
      for (std::size_t w = layer_start[l + 1]; w < n; ++w) {
        if (rng.bernoulli(cfg.extra_edge_prob)) {
          g.edges.push_back(GraphEdge{v, w});
        }
      }
    }
  }
  // The guaranteed-predecessor pass can duplicate an extra edge; dedupe so
  // indegree counts stay exact.
  std::sort(g.edges.begin(), g.edges.end(),
            [](const GraphEdge& a, const GraphEdge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  g.edges.erase(std::unique(g.edges.begin(), g.edges.end(),
                            [](const GraphEdge& a, const GraphEdge& b) {
                              return a.from == b.from && a.to == b.to;
                            }),
                g.edges.end());
}

void erdos_renyi_edges(util::Rng& rng, const RandomDagConfig& cfg,
                       GraphTaskSpec& g) {
  for (std::size_t i = 0; i + 1 < cfg.num_nodes; ++i) {
    for (std::size_t j = i + 1; j < cfg.num_nodes; ++j) {
      if (rng.bernoulli(cfg.edge_prob)) g.edges.push_back(GraphEdge{i, j});
    }
  }
}

}  // namespace

GraphTaskSpec random_dag(util::Rng& rng, const RandomDagConfig& cfg,
                         std::uint64_t id, Duration deadline) {
  FRAP_EXPECTS(cfg.num_nodes >= 1);
  FRAP_EXPECTS(cfg.num_resources >= 1);
  FRAP_EXPECTS(deadline > 0);
  FRAP_EXPECTS(cfg.min_compute > 0 && cfg.max_compute >= cfg.min_compute);
  GraphTaskSpec g;
  g.id = id;
  g.deadline = deadline;
  g.nodes.reserve(cfg.num_nodes);
  for (std::size_t v = 0; v < cfg.num_nodes; ++v) {
    g.nodes.push_back(random_node(rng, cfg));
  }
  if (cfg.num_nodes > 1) {
    if (cfg.kind == RandomDagConfig::Kind::kLayered) {
      layered_edges(rng, cfg, g);
    } else {
      erdos_renyi_edges(rng, cfg, g);
    }
  }
  return g;
}

GraphTaskSpec permute_nodes(util::Rng& rng, const GraphTaskSpec& spec) {
  const std::size_t n = spec.nodes.size();
  std::vector<std::size_t> new_of_old(n);
  for (std::size_t v = 0; v < n; ++v) new_of_old[v] = v;
  rng.shuffle(new_of_old);
  GraphTaskSpec out;
  out.id = spec.id;
  out.deadline = spec.deadline;
  out.importance = spec.importance;
  out.nodes.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    out.nodes[new_of_old[v]] = spec.nodes[v];
  }
  out.edges.reserve(spec.edges.size());
  for (const auto& e : spec.edges) {
    out.edges.push_back(GraphEdge{new_of_old[e.from], new_of_old[e.to]});
  }
  return out;
}

}  // namespace frap::workload
