// Bursty and heavy-tailed workload generators.
//
// The paper's guarantee is distribution-free: the feasible region bounds
// delays for ANY aperiodic arrival pattern, because synthetic utilization
// is tracked per actual arrival. These generators stress that property:
//
//   * MmppArrivalProcess — a two-state Markov-modulated Poisson process
//     ("quiet" / "burst" states with different rates), the standard model
//     for correlated, bursty traffic;
//   * BoundedParetoSampler — heavy-tailed computation times (the classic
//     web/server service-time model), truncated so means stay finite and
//     configurable.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/time.h"

namespace frap::workload {

// Two-state MMPP. In state 0 ("quiet") arrivals are Poisson(rate_quiet);
// in state 1 ("burst") Poisson(rate_burst). State sojourn times are
// exponential with the given means.
class MmppArrivalProcess {
 public:
  struct Config {
    double rate_quiet = 50.0;        // arrivals/s in the quiet state
    double rate_burst = 400.0;       // arrivals/s in the burst state
    Duration mean_quiet_time = 1.0;  // mean sojourn in quiet
    Duration mean_burst_time = 0.1;  // mean sojourn in burst

    bool valid() const {
      return rate_quiet > 0 && rate_burst > 0 && mean_quiet_time > 0 &&
             mean_burst_time > 0;
    }
    // Long-run average arrival rate (stationary state probabilities).
    double average_rate() const;
  };

  MmppArrivalProcess(Config config, std::uint64_t seed);

  // Time from the previous arrival to the next one, advancing the
  // modulating chain as needed.
  Duration next_interarrival();

  bool in_burst() const { return burst_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  util::Rng rng_;
  bool burst_ = false;
  Duration state_remaining_;  // time left in the current state
};

// Bounded Pareto on [lo, hi] with tail index alpha (heavier tail for
// smaller alpha; alpha <= 2 gives very high variance).
class BoundedParetoSampler {
 public:
  // Requires 0 < lo < hi and alpha > 0.
  BoundedParetoSampler(double lo, double hi, double alpha);

  double sample(util::Rng& rng) const;

  // Analytical mean of the bounded Pareto (alpha != 1).
  double mean() const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double alpha() const { return alpha_; }

 private:
  double lo_;
  double hi_;
  double alpha_;
};

}  // namespace frap::workload
