#include "workload/replay.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.h"
#include "workload/bursty.h"
#include "workload/periodic.h"
#include "workload/pipeline_workload.h"

namespace frap::workload {

void ArrivalTrace::append(Time time, const core::TaskSpec& task) {
  FRAP_EXPECTS(task.valid());
  if (records_.empty() && num_stages_ == 0) {
    num_stages_ = task.num_stages();
  }
  FRAP_EXPECTS(task.num_stages() == num_stages_);
  FRAP_EXPECTS(records_.empty() || time >= records_.back().time);
  records_.push_back(ArrivalRecord{time, task});
}

void ArrivalTrace::save(std::ostream& os) const {
  os << "frap-trace v1 " << num_stages_ << '\n';
  os.precision(17);
  for (const auto& r : records_) {
    os << r.time << ' ' << r.task.id << ' ' << r.task.deadline << ' '
       << r.task.importance;
    for (const auto& s : r.task.stages) os << ' ' << s.compute;
    os << '\n';
  }
}

bool ArrivalTrace::load(std::istream& is) {
  records_.clear();
  num_stages_ = 0;

  std::string magic;
  std::string version;
  std::size_t stages = 0;
  if (!(is >> magic >> version >> stages)) return false;
  if (magic != "frap-trace" || version != "v1" || stages == 0) return false;

  num_stages_ = stages;
  std::string line;
  std::getline(is, line);  // consume end of header line
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    ArrivalRecord r;
    if (!(ls >> r.time >> r.task.id >> r.task.deadline >>
          r.task.importance)) {
      records_.clear();
      return false;
    }
    r.task.stages.resize(stages);
    for (std::size_t j = 0; j < stages; ++j) {
      if (!(ls >> r.task.stages[j].compute)) {
        records_.clear();
        return false;
      }
    }
    if (!r.task.valid() ||
        (!records_.empty() && r.time < records_.back().time)) {
      records_.clear();
      return false;
    }
    records_.push_back(std::move(r));
  }
  return true;
}

double ArrivalTrace::offered_load(std::size_t stage) const {
  FRAP_EXPECTS(stage < num_stages_);
  if (records_.size() < 2) return 0.0;
  const Duration span = records_.back().time - records_.front().time;
  if (span <= 0) return 0.0;
  Duration work = 0;
  for (const auto& r : records_) work += r.task.stages[stage].compute;
  return work / span;
}

ArrivalTrace capture_poisson(PipelineWorkloadGenerator& gen, std::size_t count,
                             Time start) {
  FRAP_EXPECTS(count > 0);
  ArrivalTrace trace(gen.config().num_stages());
  Time t = start;
  for (std::size_t i = 0; i < count; ++i) {
    t += gen.next_interarrival();
    trace.append(t, gen.next_task());
  }
  return trace;
}

ArrivalTrace capture_mmpp(MmppArrivalProcess& arrivals,
                          PipelineWorkloadGenerator& tasks, std::size_t count,
                          Time start) {
  FRAP_EXPECTS(count > 0);
  ArrivalTrace trace(tasks.config().num_stages());
  Time t = start;
  for (std::size_t i = 0; i < count; ++i) {
    t += arrivals.next_interarrival();
    trace.append(t, tasks.next_task());
  }
  return trace;
}

ArrivalTrace capture_periodic(std::span<PeriodicStream> streams,
                              std::size_t per_stream, Time start) {
  FRAP_EXPECTS(!streams.empty());
  FRAP_EXPECTS(per_stream > 0);
  std::vector<ArrivalRecord> merged;
  merged.reserve(streams.size() * per_stream);
  for (auto& stream : streams) {
    for (std::size_t k = 0; k < per_stream; ++k) {
      const Time release = start + stream.next_release();
      merged.push_back(ArrivalRecord{release, stream.current_invocation()});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ArrivalRecord& a, const ArrivalRecord& b) {
                     return a.time < b.time;
                   });
  ArrivalTrace trace(streams.front().config().stages.size());
  for (auto& r : merged) trace.append(r.time, r.task);
  return trace;
}

}  // namespace frap::workload
