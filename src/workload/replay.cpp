#include "workload/replay.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.h"

namespace frap::workload {

void ArrivalTrace::append(Time time, const core::TaskSpec& task) {
  FRAP_EXPECTS(task.valid());
  if (records_.empty() && num_stages_ == 0) {
    num_stages_ = task.num_stages();
  }
  FRAP_EXPECTS(task.num_stages() == num_stages_);
  FRAP_EXPECTS(records_.empty() || time >= records_.back().time);
  records_.push_back(ArrivalRecord{time, task});
}

void ArrivalTrace::save(std::ostream& os) const {
  os << "frap-trace v1 " << num_stages_ << '\n';
  os.precision(17);
  for (const auto& r : records_) {
    os << r.time << ' ' << r.task.id << ' ' << r.task.deadline << ' '
       << r.task.importance;
    for (const auto& s : r.task.stages) os << ' ' << s.compute;
    os << '\n';
  }
}

bool ArrivalTrace::load(std::istream& is) {
  records_.clear();
  num_stages_ = 0;

  std::string magic;
  std::string version;
  std::size_t stages = 0;
  if (!(is >> magic >> version >> stages)) return false;
  if (magic != "frap-trace" || version != "v1" || stages == 0) return false;

  num_stages_ = stages;
  std::string line;
  std::getline(is, line);  // consume end of header line
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    ArrivalRecord r;
    if (!(ls >> r.time >> r.task.id >> r.task.deadline >>
          r.task.importance)) {
      records_.clear();
      return false;
    }
    r.task.stages.resize(stages);
    for (std::size_t j = 0; j < stages; ++j) {
      if (!(ls >> r.task.stages[j].compute)) {
        records_.clear();
        return false;
      }
    }
    if (!r.task.valid() ||
        (!records_.empty() && r.time < records_.back().time)) {
      records_.clear();
      return false;
    }
    records_.push_back(std::move(r));
  }
  return true;
}

double ArrivalTrace::offered_load(std::size_t stage) const {
  FRAP_EXPECTS(stage < num_stages_);
  if (records_.size() < 2) return 0.0;
  const Duration span = records_.back().time - records_.front().time;
  if (span <= 0) return 0.0;
  Duration work = 0;
  for (const auto& r : records_) work += r.task.stages[stage].compute;
  return work / span;
}

}  // namespace frap::workload
