#include "workload/arrival_scheduler.h"

#include "util/check.h"

namespace frap::workload {

void schedule_renewal(sim::Simulator& sim, Time until, GapFn gap,
                      ArrivalFn on_arrival) {
  FRAP_EXPECTS(gap != nullptr);
  FRAP_EXPECTS(on_arrival != nullptr);
  // The loop owns itself: the shared_ptr'd closure is captured by value in
  // every event it schedules. The self-reference cycle is broken when the
  // loop declines to schedule a successor (past `until`), releasing the
  // last owner after that event runs.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [&sim, until, gap = std::move(gap),
           on_arrival = std::move(on_arrival), pump]() mutable {
    const Duration g = gap();
    FRAP_EXPECTS(g >= 0);
    const Time t = sim.now() + g;
    if (t > until) {
      // Break the self-ownership cycle. The caller invoked us through a
      // COPY of *pump (see below), so clearing the stored function does
      // not destroy the closure currently executing.
      *pump = nullptr;
      return;
    }
    sim.at(t, [t, on_arrival, pump] {
      on_arrival(t);
      auto fn = *pump;  // copy: survives a self-clear inside the call
      fn();
    });
  };
  auto fn = *pump;
  fn();
}

void schedule_poisson(sim::Simulator& sim, double rate, Time until,
                      std::uint64_t seed, ArrivalFn on_arrival) {
  FRAP_EXPECTS(rate > 0);
  auto rng = std::make_shared<util::Rng>(seed);
  schedule_renewal(
      sim, until, [rng, rate] { return rng->exponential(1.0 / rate); },
      std::move(on_arrival));
}

void schedule_periodic(sim::Simulator& sim, Duration period, Time phase,
                       Time until, PeriodicFn on_release) {
  FRAP_EXPECTS(period > 0);
  FRAP_EXPECTS(phase >= sim.now());
  FRAP_EXPECTS(on_release != nullptr);
  auto pump = std::make_shared<std::function<void(std::uint64_t)>>();
  *pump = [&sim, period, phase, until, on_release = std::move(on_release),
           pump](std::uint64_t k) mutable {
    const Time t = phase + static_cast<double>(k) * period;
    if (t > until) {
      *pump = nullptr;  // safe: callers invoke through a copy
      return;
    }
    sim.at(t, [t, k, on_release, pump] {
      on_release(t, k);
      auto fn = *pump;
      fn(k + 1);
    });
  };
  auto fn = *pump;
  fn(0);
}

}  // namespace frap::workload
