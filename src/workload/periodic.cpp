#include "workload/periodic.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace frap::workload {

bool PeriodicStreamConfig::valid() const {
  if (period <= 0 || deadline <= 0) return false;
  if (jitter < 0) return false;
  if (stages.empty()) return false;
  for (const auto& s : stages) {
    if (!s.valid()) return false;
  }
  return true;
}

PeriodicStream::PeriodicStream(PeriodicStreamConfig config,
                               std::uint64_t id_base, std::uint64_t seed)
    : config_(std::move(config)), id_base_(id_base), rng_(seed) {
  FRAP_EXPECTS(config_.valid());
}

Time PeriodicStream::next_release() {
  const Time nominal =
      static_cast<double>(invocation_) * config_.period;
  ++invocation_;
  const Duration j =
      config_.jitter > 0 ? rng_.uniform(0.0, config_.jitter) : 0.0;
  return nominal + j;
}

core::TaskSpec PeriodicStream::current_invocation() const {
  FRAP_EXPECTS(invocation_ > 0);
  core::TaskSpec spec;
  spec.id = id_base_ + (invocation_ - 1);
  spec.deadline = config_.deadline;
  spec.importance = config_.importance;
  spec.stages = config_.stages;
  FRAP_ENSURES(spec.valid());
  return spec;
}

std::vector<double> PeriodicStream::invocation_contributions() const {
  std::vector<double> c;
  c.reserve(config_.stages.size());
  for (const auto& s : config_.stages) {
    c.push_back(util::safe_div(s.compute, config_.deadline));
  }
  return c;
}

std::size_t max_concurrent_invocations(const PeriodicStreamConfig& config) {
  FRAP_EXPECTS(config.valid());
  const double window = (config.deadline + config.jitter) / config.period;
  // Half-open release window of relative length `window` contains at most
  // ceil(window) release instants spaced one period apart.
  const double c = std::ceil(window);
  return static_cast<std::size_t>(c);
}

std::vector<double> worst_case_contributions(
    const PeriodicStreamConfig& config) {
  const auto m = static_cast<double>(max_concurrent_invocations(config));
  std::vector<double> c;
  c.reserve(config.stages.size());
  for (const auto& s : config.stages) {
    c.push_back(util::safe_div(m * s.compute, config.deadline));
  }
  return c;
}

}  // namespace frap::workload
