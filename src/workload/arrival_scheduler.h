// Self-owning arrival loops over a Simulator.
//
// Experiments keep writing the same "pump" pattern: an event that fires an
// arrival, then schedules its own successor, and must own itself so the
// closure outlives the scope that created it. These helpers package that
// safely:
//
//   schedule_poisson(sim, rate, until, seed, [&](Time t){ ... });
//   schedule_renewal(sim, until, gap_fn, [&](Time t){ ... });
//   schedule_periodic(sim, period, phase, until, [&](Time t, k){ ... });
//
// Each returns immediately; the loop lives inside the simulator's event
// graph and stops itself after `until`. Callbacks receive the arrival time
// (== sim.now()).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace frap::workload {

// Arrival callback: invoked at each arrival instant.
using ArrivalFn = std::function<void(Time)>;

// Periodic callback: arrival instant plus the invocation index.
using PeriodicFn = std::function<void(Time, std::uint64_t)>;

// Interarrival generator for schedule_renewal.
using GapFn = std::function<Duration()>;

// Poisson process at `rate` (>0) arrivals/s from now until `until`.
void schedule_poisson(sim::Simulator& sim, double rate, Time until,
                      std::uint64_t seed, ArrivalFn on_arrival);

// General renewal process: `gap()` supplies successive interarrival times
// (must be >= 0). Stops once the next arrival would land past `until`.
void schedule_renewal(sim::Simulator& sim, Time until, GapFn gap,
                      ArrivalFn on_arrival);

// Strictly periodic releases at phase + k*period, k = 0, 1, ...
// (period > 0, phase >= now). Stops after `until`.
void schedule_periodic(sim::Simulator& sim, Duration period, Time phase,
                       Time until, PeriodicFn on_release);

}  // namespace frap::workload
