#include "workload/bursty.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace frap::workload {

double MmppArrivalProcess::Config::average_rate() const {
  // Stationary probabilities proportional to the mean sojourn times.
  const double total = mean_quiet_time + mean_burst_time;
  return (rate_quiet * mean_quiet_time + rate_burst * mean_burst_time) /
         total;
}

MmppArrivalProcess::MmppArrivalProcess(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  FRAP_EXPECTS(config_.valid());
  state_remaining_ = rng_.exponential(config_.mean_quiet_time);
}

Duration MmppArrivalProcess::next_interarrival() {
  Duration elapsed = 0;
  while (true) {
    const double rate = burst_ ? config_.rate_burst : config_.rate_quiet;
    const Duration gap = rng_.exponential(1.0 / rate);
    if (gap <= state_remaining_) {
      // Arrival occurs within the current modulating state.
      state_remaining_ -= gap;
      return elapsed + gap;
    }
    // The state flips before the tentative arrival; by the memorylessness
    // of the Poisson process we may discard the tentative sample and draw
    // afresh in the new state.
    elapsed += state_remaining_;
    burst_ = !burst_;
    state_remaining_ = rng_.exponential(
        burst_ ? config_.mean_burst_time : config_.mean_quiet_time);
  }
}

BoundedParetoSampler::BoundedParetoSampler(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  FRAP_EXPECTS(lo > 0 && hi > lo);
  FRAP_EXPECTS(alpha > 0);
}

double BoundedParetoSampler::sample(util::Rng& rng) const {
  // Inverse transform for the bounded Pareto CDF.
  const double u = rng.uniform01();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

double BoundedParetoSampler::mean() const {
  // The closed form divides by (alpha - 1), which is catastrophically
  // ill-conditioned near alpha = 1; within almost_equal tolerance of the
  // degenerate point the alpha = 1 limit formula is the accurate branch.
  if (util::almost_equal(alpha_, 1.0)) {
    return std::log(hi_ / lo_) / (1.0 / lo_ - 1.0 / hi_);
  }
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  // frap-lint: allow(unsafe-division) -- lo_ < hi_ (ctor precondition), so
  // pow(lo_/hi_, alpha_) < 1 and the denominator is strictly positive.
  return (la / (1.0 - std::pow(lo_ / hi_, alpha_))) *
         (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) -
          1.0 / std::pow(hi_, alpha_ - 1.0));
}

}  // namespace frap::workload
