// The Total Ship Computing Environment scenario of Sec. 5 / Table 1.
//
// A three-stage mission pipeline (Tracking -> Distribution/Planning ->
// Display/Weapon) runs:
//   * Weapon Detection  — aperiodic, hard, D = 500 ms, C = (100, 65, 30) ms;
//   * Weapon Targeting  — periodic, hard, P = D = 50 ms, C = (5, 5, 5) ms;
//   * UAV Video         — periodic, soft, P = D = 500 ms, C = (50, 10, 50) ms
//                         (distributor 5 ms/console x 2 consoles);
//   * Target Tracking   — one periodic task per tracked target, P = D = 1 s,
//                         1 ms of stage-1 work per track (stages 2-3 are
//                         covered by a shared distributor/display activity,
//                         so a track's own demand there is zero).
//
// Capacity for the three critical tasks is reserved a priori: stages 1 and 2
// sum their contributions; stage 3 takes the maximum because the tasks drive
// different consoles (Sec. 5). That yields U^res = (0.4, 0.25, 0.1) and an
// Eq. 13 value of ~0.93 < 1, certifying the critical set. Target-Tracking
// instances are then admitted dynamically on top, each willing to wait up to
// 200 ms at the admission controller.
#pragma once

#include <cstddef>
#include <vector>

#include "core/task.h"
#include "workload/periodic.h"

namespace frap::workload::tsce {

inline constexpr std::size_t kNumStages = 3;
inline constexpr Duration kTrackingPatience = 200 * kMilli;  // Sec. 5

// Importance ordering for shedding decisions (larger = more important).
inline constexpr double kImportanceTracking = 1.0;
inline constexpr double kImportanceUavVideo = 2.0;
inline constexpr double kImportanceWeaponTargeting = 3.0;
inline constexpr double kImportanceWeaponDetection = 4.0;

// Critical streams (Table 1, with the UAV distributor expanded to its two
// consoles).
PeriodicStreamConfig weapon_targeting_stream();
PeriodicStreamConfig uav_video_stream();

// Weapon Detection is aperiodic; this is the spec template of one instance
// (caller fills in a unique id).
core::TaskSpec weapon_detection_task(std::uint64_t id);

// One Target Tracking periodic stream (one tracked target).
PeriodicStreamConfig target_tracking_stream(std::size_t track_index);

// Per-stage reserved synthetic utilization for the critical set:
// stages 1-2 sum the three tasks' contributions; stage 3 takes the maximum
// (different consoles). Equals (0.4, 0.25, 0.1).
std::vector<double> reserved_utilizations();

// Eq. 13 LHS at the reserved utilizations (~0.93, certifying the critical
// set is schedulable end-to-end).
double certification_lhs();

}  // namespace frap::workload::tsce
