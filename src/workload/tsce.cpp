#include "workload/tsce.h"

#include <algorithm>

#include "core/reservation.h"
#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::workload::tsce {

namespace {

core::StageDemand demand(Duration c) {
  core::StageDemand d;
  d.compute = c;
  return d;
}

// Contribution vectors of the three critical tasks (C_j / D).
struct CriticalTask {
  Duration deadline;
  Duration c1, c2, c3;
};

constexpr CriticalTask kWeaponDetection{500 * kMilli, 100 * kMilli,
                                        65 * kMilli, 30 * kMilli};
constexpr CriticalTask kWeaponTargeting{50 * kMilli, 5 * kMilli, 5 * kMilli,
                                        5 * kMilli};
// UAV video distributor: 5 ms/console x 2 consoles = 10 ms on stage 2;
// 50 ms of video on stages 1 and 3.
constexpr CriticalTask kUavVideo{500 * kMilli, 50 * kMilli, 10 * kMilli,
                                 50 * kMilli};

}  // namespace

PeriodicStreamConfig weapon_targeting_stream() {
  PeriodicStreamConfig c;
  c.name = "WeaponTargeting";
  c.period = 50 * kMilli;
  c.deadline = kWeaponTargeting.deadline;
  c.importance = kImportanceWeaponTargeting;
  c.stages = {demand(kWeaponTargeting.c1), demand(kWeaponTargeting.c2),
              demand(kWeaponTargeting.c3)};
  return c;
}

PeriodicStreamConfig uav_video_stream() {
  PeriodicStreamConfig c;
  c.name = "UavVideo";
  c.period = 500 * kMilli;
  c.deadline = kUavVideo.deadline;
  c.importance = kImportanceUavVideo;
  c.stages = {demand(kUavVideo.c1), demand(kUavVideo.c2),
              demand(kUavVideo.c3)};
  return c;
}

core::TaskSpec weapon_detection_task(std::uint64_t id) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = kWeaponDetection.deadline;
  spec.importance = kImportanceWeaponDetection;
  spec.stages = {demand(kWeaponDetection.c1), demand(kWeaponDetection.c2),
                 demand(kWeaponDetection.c3)};
  FRAP_ENSURES(spec.valid());
  return spec;
}

PeriodicStreamConfig target_tracking_stream(std::size_t track_index) {
  PeriodicStreamConfig c;
  c.name = "TargetTracking#" + std::to_string(track_index);
  c.period = 1.0 * kSec;
  c.deadline = 1.0 * kSec;
  c.importance = kImportanceTracking;
  // 1 ms of per-track stage-1 work; the shared distributor/display work is
  // not per-track (Sec. 5), so stages 2-3 carry no per-track demand.
  c.stages = {demand(1 * kMilli), demand(0), demand(0)};
  return c;
}

std::vector<double> reserved_utilizations() {
  // Stages 1 and 2 are shared (contributions add); stage 3 is partitioned
  // across consoles, so only the largest user counts (Sec. 5).
  using Rule = core::ReservationPlanner::StageRule;
  core::ReservationPlanner planner({Rule::kSum, Rule::kSum, Rule::kMax});
  for (const CriticalTask* t :
       {&kWeaponDetection, &kWeaponTargeting, &kUavVideo}) {
    planner.add_contributions({util::safe_div(t->c1, t->deadline),
                               util::safe_div(t->c2, t->deadline),
                               util::safe_div(t->c3, t->deadline)});
  }
  return planner.reserved();
}

double certification_lhs() {
  double lhs = 0;
  for (double u : reserved_utilizations()) {
    lhs += core::stage_delay_factor(u);
  }
  return lhs;
}

}  // namespace frap::workload::tsce
