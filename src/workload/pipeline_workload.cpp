#include "workload/pipeline_workload.h"

#include <algorithm>

#include "util/check.h"

namespace frap::workload {

Duration PipelineWorkloadConfig::mean_total_compute() const {
  Duration total = 0;
  for (Duration c : mean_compute) total += c;
  return total;
}

double PipelineWorkloadConfig::arrival_rate() const {
  const Duration bottleneck =
      *std::max_element(mean_compute.begin(), mean_compute.end());
  FRAP_EXPECTS(bottleneck > 0);
  return input_load / bottleneck;
}

PipelineWorkloadConfig PipelineWorkloadConfig::balanced(
    std::size_t stages, Duration mean_compute_per_stage, double input_load,
    double resolution) {
  PipelineWorkloadConfig c;
  c.mean_compute.assign(stages, mean_compute_per_stage);
  c.input_load = input_load;
  c.resolution = resolution;
  return c;
}

bool PipelineWorkloadConfig::valid() const {
  if (mean_compute.empty()) return false;
  for (Duration c : mean_compute) {
    if (c <= 0) return false;
  }
  if (input_load <= 0) return false;
  if (resolution <= 0) return false;
  if (deadline_spread < 0 || deadline_spread >= 1.0) return false;
  return true;
}

PipelineWorkloadGenerator::PipelineWorkloadGenerator(
    PipelineWorkloadConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      arrival_rng_(seed),
      demand_rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      aux_rng_(seed ^ 0xdeadbeefcafef00dULL) {
  FRAP_EXPECTS(config_.valid());
}

Duration PipelineWorkloadGenerator::next_interarrival() {
  return arrival_rng_.exponential(1.0 / config_.arrival_rate());
}

core::TaskSpec PipelineWorkloadGenerator::next_task() {
  core::TaskSpec spec;
  spec.id = next_id_++;
  spec.deadline =
      demand_rng_.uniform(config_.deadline_min(), config_.deadline_max());
  spec.stages.reserve(config_.num_stages());
  for (Duration mean : config_.mean_compute) {
    core::StageDemand d;
    d.compute = demand_rng_.exponential(mean);
    spec.stages.push_back(std::move(d));
  }
  FRAP_ENSURES(spec.valid());
  return spec;
}

}  // namespace frap::workload
