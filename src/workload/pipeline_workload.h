// The synthetic aperiodic pipeline workload of Sec. 4.
//
//   * Poisson arrivals;
//   * per-stage computation times drawn independently from exponential
//     distributions (one mean per stage — unequal means model the load
//     imbalance of Sec. 4.3);
//   * end-to-end deadlines uniform over a range that grows linearly with
//     the number of stages (via the mean total computation time);
//   * "task resolution" (Sec. 4.2) = mean end-to-end deadline / mean total
//     computation time;
//   * "input load" = arrival rate x mean computation time of the bottleneck
//     stage, expressed as a fraction of that stage's capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "core/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace frap::workload {

struct PipelineWorkloadConfig {
  // Mean exponential computation time per stage; size = pipeline length.
  std::vector<Duration> mean_compute;

  // Offered load on the bottleneck (largest-mean) stage, as a fraction of
  // its capacity: lambda = input_load / max_j mean_compute[j].
  double input_load = 1.0;

  // Mean end-to-end deadline / mean total computation time. The paper's
  // Fig. 4 uses ~100 ("liquid-like"); Fig. 5 sweeps it.
  double resolution = 100.0;

  // Deadlines are uniform in mean_deadline * [1 - spread, 1 + spread].
  double deadline_spread = 0.5;

  std::size_t num_stages() const { return mean_compute.size(); }
  Duration mean_total_compute() const;
  Duration mean_deadline() const { return resolution * mean_total_compute(); }
  Duration deadline_min() const {
    return mean_deadline() * (1.0 - deadline_spread);
  }
  Duration deadline_max() const {
    return mean_deadline() * (1.0 + deadline_spread);
  }

  // Poisson arrival rate implied by input_load.
  double arrival_rate() const;

  // Convenience: balanced pipeline with `stages` stages of the given mean.
  static PipelineWorkloadConfig balanced(std::size_t stages,
                                         Duration mean_compute_per_stage,
                                         double input_load,
                                         double resolution = 100.0);

  bool valid() const;
};

class PipelineWorkloadGenerator {
 public:
  PipelineWorkloadGenerator(PipelineWorkloadConfig config,
                            std::uint64_t seed);

  // Time until the next arrival (exponential with the configured rate).
  Duration next_interarrival();

  // Draws the next task (ids are sequential and unique per generator).
  core::TaskSpec next_task();

  const PipelineWorkloadConfig& config() const { return config_; }

  // Exposes the generator's RNG for auxiliary draws (e.g. random-priority
  // policies) without perturbing arrival/demand streams.
  util::Rng& aux_rng() { return aux_rng_; }

 private:
  PipelineWorkloadConfig config_;
  util::Rng arrival_rng_;
  util::Rng demand_rng_;
  util::Rng aux_rng_;
  std::uint64_t next_id_ = 1;
};

}  // namespace frap::workload
