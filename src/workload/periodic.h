// Periodic (and jittered-periodic) task streams.
//
// The paper treats periodic arrivals as a special case of aperiodic ones:
// each invocation of a periodic task is admitted like any aperiodic arrival
// (possibly against reserved capacity, Sec. 5). Jitter models the
// motivation in the introduction — with enough release jitter the minimum
// interarrival time collapses and sporadic analysis breaks down, while the
// aperiodic region still applies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace frap::workload {

struct PeriodicStreamConfig {
  std::string name;
  Duration period = 0;
  Duration deadline = 0;  // relative; often == period
  // Release jitter: invocation k is released at k*period + U(0, jitter).
  Duration jitter = 0;
  double importance = 0;
  // Per-stage demand template (fixed computation times per invocation).
  std::vector<core::StageDemand> stages;

  bool valid() const;
};

// Generates invocation release times and TaskSpecs for one periodic stream.
class PeriodicStream {
 public:
  // `id_base` namespaces this stream's task ids; invocation k gets
  // id_base + k. Streams in one experiment must use disjoint id ranges.
  PeriodicStream(PeriodicStreamConfig config, std::uint64_t id_base,
                 std::uint64_t seed);

  // Absolute release time of the next invocation (monotone per stream when
  // jitter < period; may interleave otherwise, which is the point).
  Time next_release();

  // The TaskSpec of the invocation whose release next_release() returned.
  core::TaskSpec current_invocation() const;

  const PeriodicStreamConfig& config() const { return config_; }

  // Per-stage synthetic-utilization contribution of one invocation
  // (C_j / D) — what Sec. 5 reserves for critical streams.
  std::vector<double> invocation_contributions() const;

 private:
  PeriodicStreamConfig config_;
  std::uint64_t id_base_;
  std::uint64_t invocation_ = 0;  // count of releases handed out
  util::Rng rng_;
};

// The maximum number of a stream's invocations that can be *current*
// (arrived, deadline unexpired) simultaneously: an invocation released in
// [kP, kP + J] is current for D, so releases within a half-open window of
// length D + J can coexist — at most ceil((D + J) / P) of them. With no
// jitter and D <= P this is 1 (the sporadic case); jitter or D > P raises
// it, which is exactly how release jitter inflates synthetic utilization
// (the Sec. 1 motivation, quantified).
std::size_t max_concurrent_invocations(const PeriodicStreamConfig& config);

// Worst-case per-stage synthetic-utilization contribution of the whole
// stream: max_concurrent_invocations * C_j / D. Reserving this much per
// stage (and certifying the sum across streams against the region) makes
// every invocation admissible without run-time tests, jitter included.
std::vector<double> worst_case_contributions(
    const PeriodicStreamConfig& config);

}  // namespace frap::workload
