// Seeded random DAG-task generators (tests, fuzzing, bench/dag_admission).
//
// Two families, both acyclic BY CONSTRUCTION (every edge goes from a lower
// to a higher node index, so no validity re-check can ever fail):
//   * layered — nodes are partitioned into L layers; edges go from a layer
//     to a strictly later one, biased toward the next layer. This is the
//     fork-join / stage-parallel shape of real inference and media
//     pipelines, and (with many same-resource nodes per layer) the shape
//     that stresses the long-path bound's profile enumeration.
//   * Erdős–Rényi — every forward pair (i, j), i < j, carries an edge with
//     probability p. The unstructured soup that fuzzes canonicalization.
//
// Determinism: all draws go through util::Rng (frap-lint R5); the same seed
// yields the same graph on every platform.
#pragma once

#include <cstddef>

#include "core/task_graph.h"
#include "util/rng.h"

namespace frap::workload {

struct RandomDagConfig {
  enum class Kind { kLayered, kErdosRenyi };
  Kind kind = Kind::kLayered;

  std::size_t num_nodes = 16;
  std::size_t num_resources = 4;

  // Layered shape: layer count is drawn in [min_layers, max_layers]
  // (clamped to num_nodes); each non-first-layer node gets at least one
  // predecessor in the previous layer plus extra back-edges with
  // probability extra_edge_prob per candidate.
  std::size_t min_layers = 2;
  std::size_t max_layers = 6;
  double extra_edge_prob = 0.2;

  // Erdős–Rényi: forward-edge probability.
  double edge_prob = 0.15;

  // Per-node compute drawn uniform in [min_compute, max_compute).
  Duration min_compute = 1 * kMilli;
  Duration max_compute = 10 * kMilli;
};

// One random DAG task with the given id/deadline. Node resources are drawn
// uniformly. The result is valid(cfg.num_resources) by construction and in
// index-topological layout (every edge from lower to higher index).
core::GraphTaskSpec random_dag(util::Rng& rng, const RandomDagConfig& cfg,
                               std::uint64_t id, Duration deadline);

// Relabels the nodes of `spec` by a random permutation (edges rewritten to
// match). Semantically the same task — the interning property tests assert
// the permuted form aliases to the same TaskGraphShape.
core::GraphTaskSpec permute_nodes(util::Rng& rng,
                                  const core::GraphTaskSpec& spec);

}  // namespace frap::workload
