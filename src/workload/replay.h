// Arrival-trace capture and replay.
//
// Records an arrival log (time + full TaskSpec) from any generator and
// replays it later — e.g. to compare admission policies on the *identical*
// arrival sequence, or to feed a recorded production trace through the
// simulator. The text format is line-oriented and versioned:
//
//   frap-trace v1 <num_stages>
//   <time> <id> <deadline> <importance> <C_1> ... <C_N>
//
// Critical-section structure is not serialized (replay produces lock-free
// demands); traces are an admission/schedulability tool, not a full
// checkpoint.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "core/task.h"
#include "util/time.h"

namespace frap::workload {

class PipelineWorkloadGenerator;
class MmppArrivalProcess;
class PeriodicStream;

struct ArrivalRecord {
  Time time = kTimeZero;
  core::TaskSpec task;
};

class ArrivalTrace {
 public:
  ArrivalTrace() = default;
  explicit ArrivalTrace(std::size_t num_stages) : num_stages_(num_stages) {}

  std::size_t num_stages() const { return num_stages_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const ArrivalRecord& operator[](std::size_t i) const { return records_[i]; }
  const std::vector<ArrivalRecord>& records() const { return records_; }

  // Appends an arrival. Times must be non-decreasing; the task must have
  // num_stages() stages (the first append fixes the width when the trace
  // was default-constructed).
  void append(Time time, const core::TaskSpec& task);

  // Serialization. save() writes the versioned text format; load() parses
  // it, returning false (and leaving the trace empty) on malformed input.
  void save(std::ostream& os) const;
  bool load(std::istream& is);

  // Total offered load on stage j over the trace horizon: sum of C_ij
  // divided by the time span (0 when fewer than 2 records).
  double offered_load(std::size_t stage) const;

 private:
  std::size_t num_stages_ = 0;
  std::vector<ArrivalRecord> records_;
};

// Capture seams: materialize a stochastic generator's arrival stream as a
// trace, so it can be saved (text) or serialized to the binary wire format
// (src/ingest/trace_codec.h) and replayed bit-deterministically. Each call
// advances the generator's RNG state exactly as a live run would.

// `count` Poisson arrivals starting at `start` (exponential interarrivals
// and task parameters both drawn from `gen`).
ArrivalTrace capture_poisson(PipelineWorkloadGenerator& gen, std::size_t count,
                             Time start = kTimeZero);

// `count` arrivals whose instants come from the MMPP process and whose
// tasks come from `tasks` (interarrival draws of `tasks` are unused).
ArrivalTrace capture_mmpp(MmppArrivalProcess& arrivals,
                          PipelineWorkloadGenerator& tasks, std::size_t count,
                          Time start = kTimeZero);

// `per_stream` invocations of every periodic stream, merged into one
// time-sorted trace (ties keep stream order). Streams must share a stage
// count and use disjoint id ranges.
ArrivalTrace capture_periodic(std::span<PeriodicStream> streams,
                              std::size_t per_stream, Time start = kTimeZero);

}  // namespace frap::workload
