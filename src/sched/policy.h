// Pluggable scheduling policies for stage executors.
//
// The paper's Thm 1 feasible region is derived for *fixed-priority* stage
// servers, but the executor need not be: a SchedulingPolicy computes a job's
// dispatch key from (job, remaining work, now), declares whether keys are
// static (fixed-priority: assigned once at submit) or dynamic (EDF/LLF:
// re-evaluated at every dispatch event), and names itself for config and
// observability. StageServer / PooledStageServer dispatch through the
// policy; the fixed-priority default reproduces the pre-redesign behavior
// bit-identically (pinned by tests/policy_differential_test).
//
// Dynamic policies are *event-driven*: keys are re-evaluated at scheduling
// events only (submit, segment completion, abort, speed change), which is
// the standard discrete-event approximation of LLF — a waiting job whose
// laxity crosses the running job's between events preempts at the next
// event, not at the crossing instant. EDF keys are constant per job (the
// absolute deadline), so for EDF the approximation is exact.
//
// Only the fixed-priority policy supports PCP critical sections: priority
// ceilings are defined over static task priorities, so executors reject
// locked segments under any dynamic policy.
#pragma once

#include <string_view>
#include <vector>

#include "sched/job.h"
#include "util/time.h"

namespace frap::sched {

// Whether dispatch keys survive from submit (static) or must be recomputed
// at each dispatch event (dynamic). "Static" here means fixed per *task*
// across all of its jobs — the paper's fixed-priority assumption; EDF keys
// are fixed per job but differ across jobs of one task, so EDF declares
// dynamic and is simply re-evaluated to the same value.
enum class KeyMode { kStatic, kDynamic };

// Read-only view of one active job at key-computation time. remaining_work
// is the job's outstanding execution demand on this stage (current segment's
// effective remainder — in-progress execution already banked — plus all
// later segments), in execution-time units.
struct JobView {
  const Job* job;
  Duration remaining_work;
};

// A scheduling policy is stateless and shared: one singleton instance may
// serve any number of executors concurrently-in-simulation. Smaller key
// value = more urgent; the executor pairs the value with a submit-order
// sequence number, so FIFO tie-breaking is uniform across policies and
// simulations stay deterministic.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  // Stable identifier used by config / CLI / bench labels ("fixed", "edf",
  // "llf").
  virtual std::string_view name() const = 0;

  virtual KeyMode key_mode() const = 0;

  // Dispatch-key value for `view` at simulated time `now`; smaller is more
  // urgent.
  virtual double dispatch_key(const JobView& view, Time now) const = 0;

  // True when the policy is compatible with PCP critical sections (static
  // task priorities). Executors reject locked segments otherwise.
  virtual bool supports_locks() const { return false; }
};

// Fixed-priority (the default): key = the job's static priority_value. With
// deadline-monotonic assignment this is the paper's canonical policy; Thm 1
// admission applies directly. Supports PCP locks.
const SchedulingPolicy& fixed_priority_policy();

// Earliest-deadline-first: key = the job's absolute deadline. Jobs must
// carry Job::absolute_deadline (set by the runtime at release time).
const SchedulingPolicy& edf_policy();

// Least-laxity-first: key = absolute_deadline - now - remaining_work
// (laxity in wall-time units, assuming unit stage speed). Re-evaluated at
// every dispatch event (see the event-driven note above).
const SchedulingPolicy& llf_policy();

// Lookup by name. Accepts the canonical names ("fixed", "edf", "llf") plus
// the aliases "fp" and "dm" for fixed-priority. Returns nullptr for unknown
// names.
const SchedulingPolicy* policy_by_name(std::string_view name);

// Canonical policy names, for CLI help and error messages.
std::vector<std::string_view> policy_names();

}  // namespace frap::sched
