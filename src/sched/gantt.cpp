#include "sched/gantt.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/check.h"

namespace frap::sched {

std::string render_ascii_gantt(const Timeline& timeline, Time from, Time to,
                               std::size_t width) {
  FRAP_EXPECTS(to > from);
  FRAP_EXPECTS(width >= 1);
  if (timeline.intervals().empty()) return {};

  // Job rows in order of first execution.
  std::vector<std::uint64_t> order;
  std::map<std::uint64_t, std::vector<const RunInterval*>> by_job;
  for (const auto& iv : timeline.intervals()) {
    auto [it, inserted] = by_job.try_emplace(iv.job_id);
    if (inserted || it->second.empty()) {
      // order by first appearance in the interval list
    }
    if (it->second.empty()) order.push_back(iv.job_id);
    it->second.push_back(&iv);
  }

  const Duration cell = (to - from) / static_cast<double>(width);
  std::string out;
  for (std::uint64_t id : order) {
    std::string row(width, '.');
    for (const RunInterval* iv : by_job[id]) {
      const Time b = std::max(iv->start, from);
      const Time e = std::min(iv->end, to);
      if (e <= b) continue;
      auto lo = static_cast<std::size_t>((b - from) / cell);
      // The end is exclusive: an interval ending exactly on a cell
      // boundary must not mark the next cell.
      auto hi = static_cast<std::size_t>(std::ceil((e - from) / cell)) - 1;
      if (lo >= width) continue;
      if (hi >= width) hi = width - 1;
      for (std::size_t c = lo; c <= hi; ++c) row[c] = '#';
    }
    out += "job " + std::to_string(id) + " |" + row + "|\n";
  }
  return out;
}

}  // namespace frap::sched
