// Execution timeline (Gantt) recording for stage servers.
//
// When attached, the server reports every contiguous run interval of every
// job: (job id, start, end, segment index). Tests use it to assert exact
// schedules (no two jobs overlap on one processor, preemptions happen at
// the right instants, per-job runtime sums to its demand); tools can dump
// it for visual debugging.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/time.h"

namespace frap::sched {

struct RunInterval {
  std::uint64_t job_id = 0;
  Time start = kTimeZero;
  Time end = kTimeZero;
  std::size_t segment = 0;
};

class Timeline {
 public:
  void record(std::uint64_t job_id, Time start, Time end,
              std::size_t segment) {
    intervals_.push_back(RunInterval{job_id, start, end, segment});
  }

  std::size_t size() const { return intervals_.size(); }
  const RunInterval& operator[](std::size_t i) const { return intervals_[i]; }
  const std::vector<RunInterval>& intervals() const { return intervals_; }

  // Total executed time of one job across all its intervals.
  Duration executed(std::uint64_t job_id) const;

  // True when no two intervals overlap (single-processor consistency).
  // Zero-length intervals never overlap anything.
  bool non_overlapping() const;

  // Tab-separated dump: job, start, end, segment.
  void dump(std::ostream& os) const;

  void clear() { intervals_.clear(); }

 private:
  std::vector<RunInterval> intervals_;
};

}  // namespace frap::sched
