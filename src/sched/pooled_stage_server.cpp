#include "sched/pooled_stage_server.h"

#include <algorithm>

#include "util/check.h"

namespace frap::sched {

PooledStageServer::PooledStageServer(sim::Simulator& sim,
                                     std::size_t num_processors,
                                     std::string name,
                                     const SchedulingPolicy& policy)
    : StageExecutor(sim, std::move(name), policy), procs_(num_processors) {
  FRAP_EXPECTS(num_processors >= 1);
}

void PooledStageServer::submit(Job& job) {
  for (const auto& seg : job.segments) {
    FRAP_EXPECTS(seg.lock == kNoLock);  // PCP is uniprocessor-only
  }
  admit_job(job);
  dispatch();
}

void PooledStageServer::abort(Job& job) {
  if (!job.on_server) return;
  auto it = std::find(active_.begin(), active_.end(), &job);
  if (it == active_.end()) return;
  for (auto& p : procs_) {
    if (p.running == &job) {
      stop_processor(p);
      break;
    }
  }
  remove_active(job);
  dispatch();
  if (idle()) notify_idle();
}

void PooledStageServer::set_speed(double speed) {
  FRAP_EXPECTS(speed > 0);
  if (speed == speed_) return;
  for (auto& p : procs_) {
    if (p.running != nullptr) stop_processor(p);
  }
  speed_ = speed;
  if (!active_.empty()) dispatch();
}

Duration PooledStageServer::in_progress_remaining(const Job& job) const {
  for (const auto& p : procs_) {
    if (p.running == &job) {
      const Duration elapsed = (sim_.now() - p.started) * speed_;
      return std::max(0.0, job.remaining - elapsed);
    }
  }
  return job.remaining;
}

void PooledStageServer::stop_processor(Processor& p) {
  FRAP_ASSERT(p.running != nullptr);
  const Duration elapsed = (sim_.now() - p.started) * speed_;
  p.running->remaining = std::max(0.0, p.running->remaining - elapsed);
  if (timeline_ != nullptr) {
    timeline_->record(p.running->id, p.started, sim_.now(),
                      p.running->segment_index);
  }
  sim_.cancel(p.completion);
  p.completion = sim::kInvalidEventId;
  p.running = nullptr;
}

void PooledStageServer::dispatch() {
  refresh_keys();
  // Desired set: the m most urgent active jobs.
  const std::size_t m = procs_.size();
  std::vector<Job*> desired(active_);
  if (desired.size() > m) {
    std::partial_sort(desired.begin(),
                      desired.begin() + static_cast<std::ptrdiff_t>(m),
                      desired.end(),
                      [](const Job* a, const Job* b) { return a->key < b->key; });
    desired.resize(m);
  }

  auto in_desired = [&](const Job* j) {
    return std::find(desired.begin(), desired.end(), j) != desired.end();
  };

  // Preempt processors running jobs that fell out of the top-m.
  for (auto& p : procs_) {
    if (p.running != nullptr && !in_desired(p.running)) {
      stop_processor(p);
      ++preemptions_;
    }
  }
  // Start desired jobs that are not running anywhere.
  for (Job* j : desired) {
    const bool running = std::any_of(
        procs_.begin(), procs_.end(),
        [&](const Processor& p) { return p.running == j; });
    if (running) continue;
    auto free_proc = std::find_if(
        procs_.begin(), procs_.end(),
        [](const Processor& p) { return p.running == nullptr; });
    FRAP_ASSERT(free_proc != procs_.end());
    free_proc->running = j;
    j->has_started = true;
    free_proc->started = sim_.now();
    const std::size_t index =
        static_cast<std::size_t>(free_proc - procs_.begin());
    free_proc->completion = sim_.after(
        j->remaining / speed_, [this, index] { handle_completion(index); });
  }
  // Meter edges per processor.
  for (auto& p : procs_) {
    if (p.running != nullptr && !p.meter_busy) {
      p.meter.set_busy(sim_.now());
      p.meter_busy = true;
    } else if (p.running == nullptr && p.meter_busy) {
      p.meter.set_idle(sim_.now());
      p.meter_busy = false;
    }
  }
}

void PooledStageServer::handle_completion(std::size_t processor) {
  Processor& p = procs_[processor];
  Job* job = p.running;
  FRAP_ASSERT(job != nullptr);
  p.completion = sim::kInvalidEventId;
  p.running = nullptr;
  job->remaining = 0;
  if (timeline_ != nullptr) {
    timeline_->record(job->id, p.started, sim_.now(), job->segment_index);
  }

  bool finished = false;
  if (job->segment_index + 1 < job->segments.size()) {
    ++job->segment_index;
    job->remaining = job->segments[job->segment_index].length;
  } else {
    remove_active(*job);
    finished = true;
  }

  dispatch();

  if (finished) {
    notify_complete(*job);
    if (idle()) notify_idle();
  }
}

double PooledStageServer::pool_utilization(Time from, Time to) const {
  FRAP_EXPECTS(to > from);
  Duration busy = 0;
  for (const auto& p : procs_) busy += p.meter.busy_time(from, to);
  return busy / (static_cast<double>(procs_.size()) * (to - from));
}

}  // namespace frap::sched
