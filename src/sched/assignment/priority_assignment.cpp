#include "sched/assignment/priority_assignment.h"

#include <algorithm>
#include <numeric>

#include "sched/urgency.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::sched::assignment {
namespace {

std::size_t num_stages(std::span<const TaskClass> tasks) {
  std::size_t n = 0;
  for (const TaskClass& t : tasks) {
    n = std::max(n, t.critical_sections.size());
  }
  return n;
}

Duration critical_section_at(const TaskClass& t, std::size_t stage) {
  return stage < t.critical_sections.size() ? t.critical_sections[stage] : 0.0;
}

// Deadline-monotonic order over the input indices: shorter deadline first,
// ties broken by index so the reference assignment is deterministic.
std::vector<std::size_t> dm_order(std::span<const TaskClass> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].deadline < tasks[b].deadline;
                   });
  return order;
}

}  // namespace

OrderEvaluation evaluate_order(std::span<const TaskClass> tasks,
                               std::span<const std::size_t> order) {
  FRAP_EXPECTS(order.size() == tasks.size());
  for (const TaskClass& t : tasks) FRAP_EXPECTS(t.deadline > 0);

  OrderEvaluation eval;
  const std::size_t stages = num_stages(tasks);
  eval.beta.assign(stages, 0.0);

  // alpha of the order: priority value = rank (0 = most urgent).
  std::vector<TaskUrgency> urgencies;
  urgencies.reserve(tasks.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    urgencies.push_back(TaskUrgency{static_cast<PriorityValue>(rank),
                                    tasks[order[rank]].deadline});
  }
  eval.alpha = compute_alpha(urgencies);

  // beta_j = max_i B_ij / D_i with B_ij the longest critical section at
  // stage j among tasks of strictly lower priority than i (conservative
  // shared-ceiling PCP; see the header). Scan ranks from the bottom up,
  // carrying the running max critical section below the current rank.
  std::vector<Duration> longest_below(stages, 0.0);
  for (std::size_t rank = order.size(); rank-- > 0;) {
    const TaskClass& t = tasks[order[rank]];
    for (std::size_t j = 0; j < stages; ++j) {
      if (longest_below[j] > 0) {
        eval.beta[j] = std::max(eval.beta[j],
                                util::safe_div(longest_below[j], t.deadline));
      }
    }
    for (std::size_t j = 0; j < stages; ++j) {
      longest_below[j] = std::max(longest_below[j], critical_section_at(t, j));
    }
  }

  double beta_sum = 0;
  for (double b : eval.beta) beta_sum += b;
  eval.bound = eval.alpha * (1.0 - beta_sum);
  return eval;
}

Assignment deadline_monotonic(std::span<const TaskClass> tasks) {
  Assignment a;
  a.order = dm_order(tasks);
  a.eval = evaluate_order(tasks, a.order);
  return a;
}

Assignment optimal(std::span<const TaskClass> tasks) {
  Assignment best = deadline_monotonic(tasks);
  const std::size_t n = tasks.size();
  if (n < 2) return best;

  if (n <= kExhaustiveLimit) {
    // Exhaustive scan in lexicographic index order; only a STRICT bound
    // improvement displaces the incumbent, so ties resolve to
    // deadline-monotonic and the result is deterministic.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    do {
      const OrderEvaluation eval = evaluate_order(tasks, order);
      if (eval.bound > best.eval.bound) {
        best.order = order;
        best.eval = eval;
      }
    } while (std::next_permutation(order.begin(), order.end()));
    return best;
  }

  // Audsley-style lowest-priority-first greedy: pick the task whose
  // placement at the lowest unassigned level maximizes the bound of
  // (deadline-monotonic order above it + the already-fixed tail below),
  // fix it, and recurse upward. O(n^2) order evaluations.
  std::vector<std::size_t> tail;  // lowest priorities, bottom-up
  std::vector<std::size_t> remaining = dm_order(tasks);
  while (remaining.size() > 1) {
    std::size_t pick = remaining.size();  // position in `remaining`
    double pick_bound = 0;
    for (std::size_t c = 0; c < remaining.size(); ++c) {
      std::vector<std::size_t> order;
      order.reserve(n);
      for (std::size_t r = 0; r < remaining.size(); ++r) {
        if (r != c) order.push_back(remaining[r]);
      }
      order.push_back(remaining[c]);
      order.insert(order.end(), tail.rbegin(), tail.rend());
      const double bound = evaluate_order(tasks, order).bound;
      // Strict improvement only: the first candidate in DM order wins ties,
      // keeping the greedy deterministic and DM-anchored.
      if (pick == remaining.size() || bound > pick_bound) {
        pick = c;
        pick_bound = bound;
      }
    }
    tail.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  order.push_back(remaining.front());
  order.insert(order.end(), tail.rbegin(), tail.rend());
  const OrderEvaluation eval = evaluate_order(tasks, order);
  if (eval.bound > best.eval.bound) {
    best.order = std::move(order);
    best.eval = eval;
  }
  return best;
}

}  // namespace frap::sched::assignment
