// Optimal priority-assignment search under the Thm 1 feasible region.
//
// Deadline-monotonic assignment maximizes the urgency-inversion parameter
// (alpha = 1) but not necessarily the ADMITTED LOAD: the region bound is
// alpha * (1 - sum_j beta_j), and the blocking terms beta_j depend on the
// priority order too — a low-priority task's long critical section inflates
// beta for every higher-priority task sharing the stage. Demoting a
// long-critical-section task below the tasks it blocks (accepting alpha
// slightly below 1) can shrink sum beta by far more than the alpha it
// spends, producing a strictly larger bound. This module searches priority
// orders for exactly that trade, following the program of "Optimal Fixed
// Priority Scheduling in Multi-Stage Multi-Resource Distributed Real-Time
// Systems" (see PAPERS.md): maximize admitted load subject to the alpha
// constraint.
//
// Blocking model: conservative shared-ceiling PCP — at each stage, any
// critical section of a STRICTLY lower-priority task may block a task once
// (B_ij = the longest such section; beta_j = max_i B_ij / D_i). This is the
// same worst case the admission bound charges, so a bound ranking computed
// here is sound for the admission controller as-is.
//
// Search: exhaustive permutation scan for small sets (n <= kExhaustiveLimit)
// where optimality matters and n! is cheap; an Audsley-style
// lowest-priority-first greedy beyond that (assign the lowest remaining
// priority to the candidate whose demotion maximizes the bound, with the
// rest deadline-monotonic above). Both are deterministic and never return
// an order worse than deadline-monotonic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/time.h"

namespace frap::sched::assignment {

// One task class competing for a priority level.
struct TaskClass {
  // Relative end-to-end deadline (the DM sort key and the beta denominator).
  Duration deadline = 0;
  // Longest critical section this class executes at each stage; shorter
  // than the pipeline (or empty) means lock-free at the remaining stages.
  std::vector<Duration> critical_sections;
};

// The Thm 1 admitted-load bound a specific priority order induces.
struct OrderEvaluation {
  double alpha = 1.0;        // urgency-inversion parameter of the order
  std::vector<double> beta;  // per-stage normalized blocking max_i B_ij/D_i
  double bound = 1.0;        // alpha * (1 - sum_j beta_j); the admitted load
};

// A priority order plus its evaluation. order[k] is the index (into the
// input task span) of the task holding the k-th highest priority.
struct Assignment {
  std::vector<std::size_t> order;
  OrderEvaluation eval;
};

// Largest n for which optimal() scans all n! permutations.
inline constexpr std::size_t kExhaustiveLimit = 8;

// Evaluates one explicit priority order (order.size() == tasks.size(), a
// permutation of [0, n)). Deadlines must be positive.
OrderEvaluation evaluate_order(std::span<const TaskClass> tasks,
                               std::span<const std::size_t> order);

// Deadline-monotonic reference assignment (ties broken by input index).
Assignment deadline_monotonic(std::span<const TaskClass> tasks);

// Best-bound assignment: exhaustive for n <= kExhaustiveLimit, Audsley-style
// greedy beyond. Returns the deadline-monotonic order whenever nothing
// strictly beats it, so callers can detect a genuine improvement by
// comparing bounds.
Assignment optimal(std::span<const TaskClass> tasks);

}  // namespace frap::sched::assignment
