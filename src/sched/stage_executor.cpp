#include "sched/stage_executor.h"

#include <algorithm>

#include "util/check.h"

namespace frap::sched {

// Owned by the executor; installed as the listener whenever a caller uses
// the deprecated std::function setters. Unset callbacks are simply skipped,
// matching the old optional-callback semantics.
class StageExecutor::FunctionalListenerAdapter final : public StageListener {
 public:
  void on_job_complete(StageExecutor& /*stage*/, Job& job) override {
    if (on_complete_) on_complete_(job);
  }
  void on_stage_idle(StageExecutor& /*stage*/) override {
    if (on_idle_) on_idle_();
  }

  std::function<void(Job&)> on_complete_;
  std::function<void()> on_idle_;
};

StageExecutor::StageExecutor(sim::Simulator& sim, std::string name,
                             const SchedulingPolicy& policy)
    : sim_(sim), name_(std::move(name)), policy_(&policy) {}

StageExecutor::~StageExecutor() = default;

void StageExecutor::set_listener(StageListener* listener) {
  listener_ = listener;
}

StageExecutor::FunctionalListenerAdapter& StageExecutor::legacy_adapter() {
  if (legacy_adapter_ == nullptr) {
    legacy_adapter_ = std::make_unique<FunctionalListenerAdapter>();
  }
  listener_ = legacy_adapter_.get();
  return *legacy_adapter_;
}

void StageExecutor::set_on_complete(std::function<void(Job&)> cb) {
  legacy_adapter().on_complete_ = std::move(cb);
}

void StageExecutor::set_on_idle(std::function<void()> cb) {
  legacy_adapter().on_idle_ = std::move(cb);
}

void StageExecutor::admit_job(Job& job) {
  FRAP_EXPECTS(!job.on_server);
  FRAP_EXPECTS(!job.segments.empty());
  job.on_server = true;
  job.segment_index = 0;
  job.remaining = job.segments[0].length;
  job.held_lock = kNoLock;
  job.key = PriorityKey{
      policy_->dispatch_key(JobView{&job, job.total_length()}, sim_.now()),
      next_seq_++};
  active_.push_back(&job);
}

void StageExecutor::refresh_keys() {
  if (policy_->key_mode() != KeyMode::kDynamic) return;
  const Time now = sim_.now();
  for (Job* job : active_) {
    Duration rem = in_progress_remaining(*job);
    for (std::size_t i = job->segment_index + 1; i < job->segments.size();
         ++i) {
      rem += job->segments[i].length;
    }
    job->key.value = policy_->dispatch_key(JobView{job, rem}, now);
  }
}

// frap:contract(hotpath)
void StageExecutor::notify_complete(Job& job) {
  if (listener_ != nullptr) listener_->on_job_complete(*this, job);
}

// frap:contract(hotpath)
void StageExecutor::notify_idle() {
  if (listener_ != nullptr) listener_->on_stage_idle(*this);
}

void StageExecutor::remove_active(Job& job) {
  auto it = std::find(active_.begin(), active_.end(), &job);
  FRAP_ASSERT(it != active_.end());
  active_.erase(it);
  job.on_server = false;
}

}  // namespace frap::sched
