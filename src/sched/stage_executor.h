// Common surface and shared machinery of the stage executors.
//
// StageServer (one processor, PCP locks) and PooledStageServer (m
// processors, global scheduling) used to carry two copy-pasted public
// surfaces; StageExecutor is the single interface both implement, and the
// home of the state they duplicated (active set, listener wiring, sequence
// numbers, preemption count, timeline capture, speed factor, policy).
// Runtimes, benches, and examples program against this type and stay
// agnostic of which executor backs a stage.
//
// Completion/idle notification goes through the typed StageListener
// interface so dispatch stays allocation-free end to end: installing a
// listener stores one raw pointer, and firing it is a virtual call with no
// std::function machinery on the hot path. The legacy std::function setters
// survive one PR as deprecated shims (mirroring the PR-3 Admitter
// migration) implemented by an owned adapter.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/utilization_meter.h"
#include "sched/job.h"
#include "sched/policy.h"
#include "sched/timeline.h"
#include "sim/simulator.h"

namespace frap::sched {

class StageExecutor;

// Typed completion/idle sink. One listener instance may serve many stages;
// the executor identifies itself (and carries an opaque runtime-assigned
// tag, typically the stage index) in every callback.
class StageListener {
 public:
  virtual ~StageListener() = default;

  // The job finished its last segment and is already off the stage, so the
  // listener may resubmit it elsewhere.
  virtual void on_job_complete(StageExecutor& stage, Job& job) = 0;

  // The stage transitioned to idle (no active jobs). This is the hook the
  // admission controller uses for synthetic-utilization reset.
  virtual void on_stage_idle(StageExecutor& stage) = 0;
};

class StageExecutor {
 public:
  StageExecutor(const StageExecutor&) = delete;
  StageExecutor& operator=(const StageExecutor&) = delete;
  virtual ~StageExecutor();

  // Installs the completion/idle sink (nullptr detaches). The listener must
  // outlive the executor. Replaces any previously installed listener,
  // including one set through the deprecated std::function shims.
  void set_listener(StageListener* listener);

  // Opaque value the owning runtime may attach (typically the stage index)
  // so a shared listener can tell stages apart without a lookup.
  void set_tag(std::size_t tag) { tag_ = tag; }
  std::size_t tag() const { return tag_; }

  // Deprecated shim: wraps the callback in an owned StageListener adapter.
  // Prefer set_listener; removed next PR.
  void set_on_complete(std::function<void(Job&)> cb);

  // Deprecated shim: see set_on_complete.
  void set_on_idle(std::function<void()> cb);

  // Admits a job to this stage. The job must not already be on a server and
  // must have at least one segment; the caller keeps ownership and must keep
  // the job alive until completion or abort. Executors whose policy does not
  // support locks reject jobs with locked segments.
  virtual void submit(Job& job) = 0;

  // Removes a job from the stage (used by load shedding). No-op on jobs not
  // currently on this executor.
  virtual void abort(Job& job) = 0;

  // True when no job is active (running, ready, or blocked).
  bool idle() const { return active_.empty(); }

  std::size_t active_jobs() const { return active_.size(); }

  // Real utilization measurement (busy fraction of wall time). For pooled
  // executors this is processor 0; see PooledStageServer::pool_utilization
  // for the whole-pool figure.
  virtual const metrics::UtilizationMeter& meter() const = 0;

  // Number of preemptions performed (a running job was displaced).
  std::uint64_t preemptions() const { return preemptions_; }

  // Optional Gantt recording: every contiguous run interval is reported.
  // The timeline must outlive the executor; nullptr detaches.
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  // Processor speed factor (> 0, default 1): one second of wall time
  // executes `speed` seconds of job demand. Models degraded modes and may
  // change mid-run; the running job's progress is banked at the old speed.
  // NOTE: the schedulability analysis sees demands in EXECUTION time, so
  // slowing a stage without re-scaling admission inputs voids the guarantee
  // (demonstrated in bench/failure_degradation).
  virtual void set_speed(double speed) = 0;
  double speed() const { return speed_; }

  // The scheduling policy this executor dispatches through.
  const SchedulingPolicy& policy() const { return *policy_; }

  const std::string& name() const { return name_; }

 protected:
  StageExecutor(sim::Simulator& sim, std::string name,
                const SchedulingPolicy& policy);

  // Shared submit prologue: validates the job, initializes its per-stage
  // state, assigns the dispatch key (policy value + FIFO sequence), and adds
  // it to the active set. The caller then dispatches.
  void admit_job(Job& job);

  // Re-evaluates every active job's key value under a dynamic policy
  // (no-op for static policies). Called at the top of dispatch so EDF/LLF
  // decisions see current deadlines/laxities; sequence numbers are
  // preserved, so FIFO tie-breaking is unaffected.
  void refresh_keys();

  // Effective remaining demand of `job`'s CURRENT segment: banked remainder
  // minus any in-progress execution the executor has not yet banked.
  virtual Duration in_progress_remaining(const Job& job) const = 0;

  // frap:contract(hotpath)
  void notify_complete(Job& job);

  // frap:contract(hotpath)
  void notify_idle();

  // Removes `job` from the active set and clears its on_server flag.
  void remove_active(Job& job);

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Job*> active_;  // running + ready + blocked
  Timeline* timeline_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t preemptions_ = 0;
  double speed_ = 1.0;

 private:
  // Bridges the deprecated std::function setters onto StageListener.
  class FunctionalListenerAdapter;
  FunctionalListenerAdapter& legacy_adapter();

  const SchedulingPolicy* policy_;
  StageListener* listener_ = nullptr;
  std::unique_ptr<FunctionalListenerAdapter> legacy_adapter_;
  std::size_t tag_ = 0;
};

}  // namespace frap::sched
