// One pipeline stage: a single resource (CPU) running jobs under preemptive
// fixed-priority scheduling, with optional PCP-managed critical sections.
//
// The server is fully event-driven on a Simulator: every state change
// (submit, segment completion, lock release, abort) triggers a dispatch that
// selects the job to run next, preempting the current one if necessary.
// Dispatch under PCP: run the most urgent active job unless it is blocked on
// a lock, in which case run its blocker (priority inheritance) — with
// non-nested stage-local locks the blocker is always runnable, so this
// realizes classic PCP exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/utilization_meter.h"
#include "sched/job.h"
#include "sched/pcp.h"
#include "sched/timeline.h"
#include "sim/simulator.h"

namespace frap::sched {

class StageServer {
 public:
  explicit StageServer(sim::Simulator& sim, std::string name = {});

  StageServer(const StageServer&) = delete;
  StageServer& operator=(const StageServer&) = delete;

  // Called when a job finishes its last segment. The job is already off the
  // server when the callback runs, so the callback may resubmit it elsewhere.
  void set_on_complete(std::function<void(Job&)> cb) {
    on_complete_ = std::move(cb);
  }

  // Called whenever the server transitions to idle (no active jobs). This is
  // the hook the admission controller uses for synthetic-utilization reset.
  void set_on_idle(std::function<void()> cb) { on_idle_ = std::move(cb); }

  // Admits a job to this stage's ready queue. The job must not already be on
  // a server and must have at least one segment. The caller keeps ownership
  // and must keep the job alive until completion or abort.
  void submit(Job& job);

  // Removes a job from the stage (used by load shedding). Releases any held
  // lock. No-op on jobs not currently on this server.
  void abort(Job& job);

  // True when no job is active (running, ready, or blocked).
  bool idle() const { return active_.empty(); }

  std::size_t active_jobs() const { return active_.size(); }
  const Job* running() const { return running_; }

  // Real utilization measurement (busy fraction of wall time).
  const metrics::UtilizationMeter& meter() const { return meter_; }

  // Lock manager, exposed so workloads can pre-register priority ceilings.
  PcpLockManager& locks() { return locks_; }
  const PcpLockManager& locks() const { return locks_; }

  // Number of preemptions performed (a running job was displaced).
  std::uint64_t preemptions() const { return preemptions_; }

  // Optional Gantt recording: every contiguous run interval is reported.
  // The timeline must outlive the server; nullptr detaches.
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  // Processor speed factor (> 0, default 1): one second of wall time
  // executes `speed` seconds of job demand. Models degraded modes — a
  // damaged stage running at 0.7x — and may change mid-run; the running
  // job's progress is banked at the old speed. NOTE: the schedulability
  // analysis sees demands in EXECUTION time, so slowing a stage without
  // re-scaling admission inputs voids the guarantee (demonstrated in
  // bench/failure_degradation).
  void set_speed(double speed);
  double speed() const { return speed_; }

  const std::string& name() const { return name_; }

 private:
  // Chooses which job should occupy the processor now (PCP-aware);
  // nullptr when none.
  Job* pick_next();

  // Reconciles running_ with pick_next(): preempt/resume/start as needed and
  // keep the utilization meter in sync.
  void dispatch();

  // Halts the running job, banking its elapsed execution. Keeps it active.
  void preempt_running();

  // Segment-completion event handler for the currently running job.
  void handle_segment_completion();

  void remove_active(Job& job);

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Job*> active_;  // running + ready + blocked
  Job* running_ = nullptr;
  Time run_started_ = kTimeZero;
  sim::EventId completion_event_ = sim::kInvalidEventId;
  bool meter_busy_ = false;

  PcpLockManager locks_;
  metrics::UtilizationMeter meter_;
  Timeline* timeline_ = nullptr;
  std::function<void(Job&)> on_complete_;
  std::function<void()> on_idle_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t preemptions_ = 0;
  double speed_ = 1.0;
};

}  // namespace frap::sched
