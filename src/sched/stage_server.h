// One pipeline stage: a single resource (CPU) running jobs under a
// preemptive scheduling policy (fixed-priority by default), with optional
// PCP-managed critical sections.
//
// The server is fully event-driven on a Simulator: every state change
// (submit, segment completion, lock release, abort) triggers a dispatch that
// selects the job to run next, preempting the current one if necessary.
// Dispatch under PCP: run the most urgent active job unless it is blocked on
// a lock, in which case run its blocker (priority inheritance) — with
// non-nested stage-local locks the blocker is always runnable, so this
// realizes classic PCP exactly. Critical sections require the fixed-priority
// policy (priority ceilings are defined over static task priorities); under
// a dynamic policy (EDF/LLF) jobs must be lock-free.
#pragma once

#include <string>

#include "sched/pcp.h"
#include "sched/stage_executor.h"

namespace frap::sched {

class StageServer : public StageExecutor {
 public:
  explicit StageServer(sim::Simulator& sim, std::string name = {},
                       const SchedulingPolicy& policy = fixed_priority_policy());

  void submit(Job& job) override;
  void abort(Job& job) override;

  const Job* running() const { return running_; }

  const metrics::UtilizationMeter& meter() const override { return meter_; }

  // Lock manager, exposed so workloads can pre-register priority ceilings.
  PcpLockManager& locks() { return locks_; }
  const PcpLockManager& locks() const { return locks_; }

  void set_speed(double speed) override;

 private:
  // Chooses which job should occupy the processor now (PCP-aware);
  // nullptr when none.
  Job* pick_next();

  // Reconciles running_ with pick_next(): preempt/resume/start as needed and
  // keep the utilization meter in sync.
  void dispatch();

  // Halts the running job, banking its elapsed execution. Keeps it active.
  void preempt_running();

  // Segment-completion event handler for the currently running job.
  void handle_segment_completion();

  Duration in_progress_remaining(const Job& job) const override;

  Job* running_ = nullptr;
  Time run_started_ = kTimeZero;
  sim::EventId completion_event_ = sim::kInvalidEventId;
  bool meter_busy_ = false;

  PcpLockManager locks_;
  metrics::UtilizationMeter meter_;
};

}  // namespace frap::sched
