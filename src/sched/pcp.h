// Priority Ceiling Protocol (PCP) lock manager for one stage.
//
// Classic PCP (Sha/Rajkumar/Lehoczky): a job may acquire a lock only if its
// priority is strictly higher than the ceilings of all locks held by other
// jobs; the holder of the blocking lock executes with the blocked job's
// (inherited) priority. Consequences we rely on and test:
//   * a job is blocked at most once per stage, and
//   * the blocking time is bounded by one lower-priority critical section,
// which is exactly the B_ij term of the paper's Eq. 15.
//
// Ceilings: PCP needs ceiling(R) <= priority value (i.e. at least as urgent)
// of every job that will ever lock R. With aperiodic arrivals the exact
// future is unknown, so ceilings come from workload configuration via
// set_ceiling(); as a safety net the manager also tightens a ceiling if a
// submitted job turns out to be more urgent than configured (and reports it
// through ceiling_violations() so experiments can detect misconfiguration).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sched/priority.h"

namespace frap::sched {

struct Job;

class PcpLockManager {
 public:
  // Declares (or tightens) the priority ceiling of a lock. Smaller value =
  // more urgent ceiling.
  void set_ceiling(int lock, PriorityValue ceiling);

  // Tightens the ceiling if this user is more urgent than the configured
  // ceiling; counts a violation when that happens.
  void note_user(int lock, PriorityValue user_priority);

  // True if `job` may acquire `lock` under PCP right now: the lock is free
  // and the job's priority is strictly higher (smaller value) than every
  // ceiling of locks held by *other* jobs. FIFO tie-break is not used here:
  // PCP's strict-inequality rule is on the priority value itself.
  bool can_acquire(const Job& job, int lock) const;

  // Records acquisition. Requires can_acquire().
  void acquire(Job& job, int lock);

  // Releases a held lock. Requires the job to hold it.
  void release(Job& job, int lock);

  // The job currently preventing `job` from acquiring `lock` under PCP:
  // the holder of the most urgent ceiling among locks held by others.
  // Returns nullptr if nothing blocks (i.e. can_acquire would be true).
  Job* blocker(const Job& job, int lock) const;

  bool is_locked(int lock) const { return holder_of_.count(lock) > 0; }
  Job* holder(int lock) const;
  std::uint64_t ceiling_violations() const { return ceiling_violations_; }

 private:
  std::unordered_map<int, PriorityValue> ceiling_;
  std::unordered_map<int, Job*> holder_of_;
  std::uint64_t ceiling_violations_ = 0;
};

}  // namespace frap::sched
