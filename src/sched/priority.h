// Fixed task priorities.
//
// The paper's analysis covers any *fixed-priority* policy: a task's priority
// is the same at every pipeline stage and does not depend on its arrival
// time (so EDF is out of scope, deadline-monotonic is the canonical optimal
// choice). We encode priority as a double where SMALLER VALUE = MORE URGENT;
// deadline-monotonic is then simply `value = relative deadline`.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace frap::sched {

using PriorityValue = double;

// Total order on (priority, submission sequence): lower value wins; ties are
// broken FIFO by a monotonically increasing sequence number so simulations
// are deterministic.
struct PriorityKey {
  PriorityValue value;
  std::uint64_t seq;

  friend bool operator<(const PriorityKey& a, const PriorityKey& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.seq < b.seq;
  }
  friend bool operator==(const PriorityKey& a, const PriorityKey& b) {
    return a.value == b.value && a.seq == b.seq;
  }
};

// True when a is strictly more urgent than b.
inline bool higher_priority(const PriorityKey& a, const PriorityKey& b) {
  return a < b;
}

}  // namespace frap::sched
