// Task priorities and dispatch keys.
//
// The paper's analysis covers any *fixed-priority* policy: a task's priority
// is the same at every pipeline stage and does not depend on its arrival
// time (deadline-monotonic is the canonical optimal choice). We encode
// priority as a double where SMALLER VALUE = MORE URGENT; deadline-monotonic
// is then simply `value = relative deadline`. PriorityKey is also the
// executor's generic dispatch key: under a dynamic policy (sched/policy.h)
// the value holds an absolute deadline (EDF) or a laxity (LLF) instead of a
// static priority, with the same smaller-is-more-urgent order.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace frap::sched {

using PriorityValue = double;

// Total order on (priority, submission sequence): lower value wins; ties are
// broken FIFO by a monotonically increasing sequence number so simulations
// are deterministic.
//
// Exact-tie contract: key values are COPIES of assigned values (a task's
// priority, an absolute deadline, a laxity) — every comparison below sees
// the same bit patterns the executor stored, with no intervening arithmetic
// on either side. Two keys compare equal iff they were assigned equal
// values, so exact double comparison is the intended semantics; an epsilon
// would merge distinct priorities that happen to be close and break the
// deterministic total order the simulator depends on.
struct PriorityKey {
  PriorityValue value;
  std::uint64_t seq;

  friend bool operator<(const PriorityKey& a, const PriorityKey& b) {
    // frap-lint: allow(float-equality) -- exact-tie contract above: values
    // are uninterpreted copies of assigned keys, never derived arithmetic.
    if (a.value != b.value) return a.value < b.value;
    return a.seq < b.seq;
  }
  friend bool operator==(const PriorityKey& a, const PriorityKey& b) {
    // frap-lint: allow(float-equality) -- exact-tie contract above: equality
    // means "assigned the same key", not numerical closeness.
    return a.value == b.value && a.seq == b.seq;
  }
};

// True when a is strictly more urgent than b.
inline bool higher_priority(const PriorityKey& a, const PriorityKey& b) {
  return a < b;
}

}  // namespace frap::sched
