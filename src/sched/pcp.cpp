#include "sched/pcp.h"

#include "sched/job.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::sched {

void PcpLockManager::set_ceiling(int lock, PriorityValue ceiling) {
  FRAP_EXPECTS(lock >= 0);
  auto [it, inserted] = ceiling_.try_emplace(lock, ceiling);
  if (!inserted && ceiling < it->second) it->second = ceiling;
}

void PcpLockManager::note_user(int lock, PriorityValue user_priority) {
  FRAP_EXPECTS(lock >= 0);
  auto [it, inserted] = ceiling_.try_emplace(lock, user_priority);
  if (!inserted && user_priority < it->second) {
    it->second = user_priority;
    ++ceiling_violations_;
  }
}

bool PcpLockManager::can_acquire(const Job& job, int lock) const {
  FRAP_EXPECTS(lock >= 0);
  if (is_locked(lock)) return false;
  for (const auto& [held, holder] : holder_of_) {
    if (holder == &job) continue;  // (no nesting, so this cannot happen)
    const auto it = ceiling_.find(held);
    FRAP_ASSERT(it != ceiling_.end());
    // Blocked unless strictly more urgent than the ceiling.
    if (!(job.priority_value < it->second)) return false;
  }
  return true;
}

Job* PcpLockManager::blocker(const Job& job, int lock) const {
  FRAP_EXPECTS(lock >= 0);
  // Direct blocking: someone holds the very lock we want.
  Job* best = nullptr;
  PriorityValue best_ceiling = util::kInf;
  if (auto it = holder_of_.find(lock); it != holder_of_.end()) {
    best = it->second;
    const auto c = ceiling_.find(lock);
    FRAP_ASSERT(c != ceiling_.end());
    best_ceiling = c->second;
  }
  // Ceiling blocking: another job holds a lock whose ceiling is at least as
  // urgent as us. Report the holder of the most urgent such ceiling, since
  // that is the ceiling the job fails against.
  for (const auto& [held, holder] : holder_of_) {
    if (holder == &job) continue;
    const auto c = ceiling_.find(held);
    FRAP_ASSERT(c != ceiling_.end());
    if (!(job.priority_value < c->second) && c->second < best_ceiling) {
      best = holder;
      best_ceiling = c->second;
    }
  }
  return best;
}

void PcpLockManager::acquire(Job& job, int lock) {
  FRAP_EXPECTS(can_acquire(job, lock));
  FRAP_EXPECTS(job.held_lock == kNoLock);  // no nesting
  holder_of_[lock] = &job;
  job.held_lock = lock;
}

void PcpLockManager::release(Job& job, int lock) {
  auto it = holder_of_.find(lock);
  FRAP_EXPECTS(it != holder_of_.end() && it->second == &job);
  holder_of_.erase(it);
  job.held_lock = kNoLock;
}

Job* PcpLockManager::holder(int lock) const {
  auto it = holder_of_.find(lock);
  return it == holder_of_.end() ? nullptr : it->second;
}

}  // namespace frap::sched
