// The unit of execution on one stage server.
//
// A job is what one subtask becomes once it reaches its stage: a fixed
// priority plus a sequence of execution segments. A segment may require a
// lock for its whole duration (a critical section, Sec. 3.2 of the paper);
// locks are stage-local and non-nested, which matches the paper's blocking
// model where B_ij bounds a single critical section per stage.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/priority.h"
#include "util/time.h"

namespace frap::sched {

inline constexpr int kNoLock = -1;

struct Segment {
  Duration length = 0;
  int lock = kNoLock;  // kNoLock, or a stage-local lock id >= 0
};

class StageServer;

// Plain state holder; all scheduling decisions live in StageServer. Jobs are
// owned by the runtime that created them and must outlive their time on the
// server.
struct Job {
  Job(std::uint64_t id_, PriorityValue priority, std::vector<Segment> segs)
      : id(id_), priority_value(priority), segments(std::move(segs)) {}

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  // Total execution demand over all segments.
  Duration total_length() const {
    Duration t = 0;
    for (const auto& s : segments) t += s.length;
    return t;
  }

  const std::uint64_t id;
  const PriorityValue priority_value;
  std::vector<Segment> segments;

  // Absolute deadline of the job's end-to-end task instance, set by the
  // runtime before submit. Dynamic policies (EDF/LLF) derive dispatch keys
  // from it; the fixed-priority default ignores it.
  Time absolute_deadline = kTimeZero;

  // --- state managed by StageServer ---
  PriorityKey key{0, 0};         // assigned at submit (adds FIFO tiebreak)
  std::size_t segment_index = 0; // current segment
  Duration remaining = 0;        // remaining time in current segment
  int held_lock = kNoLock;       // lock currently held, if any
  bool on_server = false;        // submitted and not yet complete/aborted
  bool has_started = false;      // ever occupied the processor
};

}  // namespace frap::sched
