#include "sched/policy.h"

namespace frap::sched {
namespace {

class FixedPriorityPolicy final : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "fixed"; }
  KeyMode key_mode() const override { return KeyMode::kStatic; }
  double dispatch_key(const JobView& view, Time /*now*/) const override {
    return view.job->priority_value;
  }
  bool supports_locks() const override { return true; }
};

class EdfPolicy final : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "edf"; }
  KeyMode key_mode() const override { return KeyMode::kDynamic; }
  double dispatch_key(const JobView& view, Time /*now*/) const override {
    return view.job->absolute_deadline;
  }
};

class LlfPolicy final : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "llf"; }
  KeyMode key_mode() const override { return KeyMode::kDynamic; }
  double dispatch_key(const JobView& view, Time now) const override {
    return view.job->absolute_deadline - now - view.remaining_work;
  }
};

}  // namespace

const SchedulingPolicy& fixed_priority_policy() {
  static const FixedPriorityPolicy policy;
  return policy;
}

const SchedulingPolicy& edf_policy() {
  static const EdfPolicy policy;
  return policy;
}

const SchedulingPolicy& llf_policy() {
  static const LlfPolicy policy;
  return policy;
}

const SchedulingPolicy* policy_by_name(std::string_view name) {
  if (name == "fixed" || name == "fp" || name == "dm")
    return &fixed_priority_policy();
  if (name == "edf") return &edf_policy();
  if (name == "llf") return &llf_policy();
  return nullptr;
}

std::vector<std::string_view> policy_names() {
  return {"fixed", "edf", "llf"};
}

}  // namespace frap::sched
