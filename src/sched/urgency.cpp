#include "sched/urgency.h"

#include <algorithm>

#include "util/check.h"
#include "util/math.h"

namespace frap::sched {

double compute_alpha(std::span<const TaskUrgency> tasks) {
  // Sort by priority (most urgent first). For each task, the worst pairing
  // is against the largest deadline among tasks of equal-or-higher priority.
  std::vector<TaskUrgency> sorted(tasks.begin(), tasks.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const TaskUrgency& a, const TaskUrgency& b) {
              return a.priority < b.priority;
            });

  double alpha = 1.0;
  Duration max_d_so_far = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    // Process one equal-priority group at a time: members of a group are at
    // "equal or higher" priority relative to each other, so the group's own
    // max deadline participates in the prefix max before ratios are taken.
    std::size_t j = i;
    Duration group_max = 0;
    while (j < sorted.size() && sorted[j].priority == sorted[i].priority) {
      FRAP_EXPECTS(sorted[j].deadline > 0);
      group_max = std::max(group_max, sorted[j].deadline);
      ++j;
    }
    max_d_so_far = std::max(max_d_so_far, group_max);
    for (std::size_t k = i; k < j; ++k) {
      alpha = std::min(alpha, sorted[k].deadline / max_d_so_far);
    }
    i = j;
  }
  FRAP_ENSURES(alpha > 0 && alpha <= 1.0);
  return alpha;
}

double OnlineAlphaEstimator::preview(const TaskUrgency& t) const {
  FRAP_EXPECTS(t.deadline > 0);
  // Pair the newcomer as the LOW-priority side against all equal-or-higher
  // priority history, and as the HIGH-priority side against all
  // equal-or-lower priority history.
  Duration max_d_higher = 0;  // max deadline among priority <= t.priority
  Duration min_d_lower = 0;   // min deadline among priority >= t.priority
  bool have_lower = false;
  for (const auto& [prio, range] : by_priority_) {
    if (prio <= t.priority) {
      max_d_higher = std::max(max_d_higher, range.max_d);
    }
    if (prio >= t.priority) {
      min_d_lower = have_lower ? std::min(min_d_lower, range.min_d)
                               : range.min_d;
      have_lower = true;
    }
  }
  double alpha = alpha_;
  if (max_d_higher > 0) {
    alpha = std::min(alpha, t.deadline / max_d_higher);
  }
  if (have_lower) {
    alpha = std::min(alpha, util::safe_div(min_d_lower, t.deadline));
  }
  return alpha;
}

void OnlineAlphaEstimator::observe(const TaskUrgency& t) {
  alpha_ = preview(t);
  auto [it, inserted] =
      by_priority_.try_emplace(t.priority, Range{t.deadline, t.deadline});
  if (!inserted) {
    it->second.min_d = std::min(it->second.min_d, t.deadline);
    it->second.max_d = std::max(it->second.max_d, t.deadline);
  }
}

}  // namespace frap::sched
