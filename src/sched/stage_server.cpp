#include "sched/stage_server.h"

#include <algorithm>

#include "util/check.h"

namespace frap::sched {

StageServer::StageServer(sim::Simulator& sim, std::string name,
                         const SchedulingPolicy& policy)
    : StageExecutor(sim, std::move(name), policy) {}

void StageServer::submit(Job& job) {
  if (!policy().supports_locks()) {
    // PCP ceilings are defined over static task priorities; dynamic-policy
    // stages must be lock-free.
    for (const auto& seg : job.segments) FRAP_EXPECTS(seg.lock == kNoLock);
  }
  admit_job(job);
  for (const auto& seg : job.segments) {
    if (seg.lock != kNoLock) locks_.note_user(seg.lock, job.priority_value);
  }
  dispatch();
}

void StageServer::abort(Job& job) {
  if (!job.on_server) return;
  auto it = std::find(active_.begin(), active_.end(), &job);
  if (it == active_.end()) return;  // on some other server
  if (running_ == &job) preempt_running();
  if (job.held_lock != kNoLock) locks_.release(job, job.held_lock);
  remove_active(job);
  dispatch();
  if (idle()) notify_idle();
}

Job* StageServer::pick_next() {
  if (active_.empty()) return nullptr;
  Job* best = *std::min_element(
      active_.begin(), active_.end(),
      [](const Job* a, const Job* b) { return a->key < b->key; });
  const Segment& seg = best->segments[best->segment_index];
  if (seg.lock != kNoLock && best->held_lock != seg.lock &&
      !locks_.can_acquire(*best, seg.lock)) {
    // Priority inheritance: the holder blocking `best` runs in its place.
    Job* blk = locks_.blocker(*best, seg.lock);
    FRAP_ASSERT(blk != nullptr && blk != best);
    FRAP_ASSERT(blk->on_server);
    return blk;
  }
  return best;
}

void StageServer::set_speed(double speed) {
  FRAP_EXPECTS(speed > 0);
  if (speed == speed_) return;
  // Bank the running job's progress at the old speed, switch, redispatch
  // (the same job resumes with its completion event recomputed).
  Job* resumed = running_;
  if (resumed != nullptr) preempt_running();
  speed_ = speed;
  if (resumed != nullptr || !active_.empty()) dispatch();
}

Duration StageServer::in_progress_remaining(const Job& job) const {
  if (&job == running_) {
    const Duration elapsed = (sim_.now() - run_started_) * speed_;
    return std::max(0.0, job.remaining - elapsed);
  }
  return job.remaining;
}

void StageServer::preempt_running() {
  FRAP_ASSERT(running_ != nullptr);
  const Duration elapsed = (sim_.now() - run_started_) * speed_;
  running_->remaining = std::max(0.0, running_->remaining - elapsed);
  if (timeline_ != nullptr) {
    timeline_->record(running_->id, run_started_, sim_.now(),
                      running_->segment_index);
  }
  sim_.cancel(completion_event_);
  completion_event_ = sim::kInvalidEventId;
  running_ = nullptr;
}

void StageServer::dispatch() {
  refresh_keys();
  Job* next = pick_next();
  if (next != running_) {
    if (running_ != nullptr) {
      preempt_running();
      ++preemptions_;
    }
    if (next != nullptr) {
      running_ = next;
      next->has_started = true;
      run_started_ = sim_.now();
      Segment& seg = next->segments[next->segment_index];
      if (seg.lock != kNoLock && next->held_lock != seg.lock) {
        locks_.acquire(*next, seg.lock);
      }
      completion_event_ = sim_.after(next->remaining / speed_,
                                     [this] { handle_segment_completion(); });
    }
  }
  // Meter transitions only on busy <-> idle edges.
  if (running_ != nullptr && !meter_busy_) {
    meter_.set_busy(sim_.now());
    meter_busy_ = true;
  } else if (running_ == nullptr && meter_busy_) {
    meter_.set_idle(sim_.now());
    meter_busy_ = false;
  }
}

void StageServer::handle_segment_completion() {
  Job* job = running_;
  FRAP_ASSERT(job != nullptr);
  completion_event_ = sim::kInvalidEventId;
  running_ = nullptr;
  job->remaining = 0;
  if (timeline_ != nullptr) {
    timeline_->record(job->id, run_started_, sim_.now(),
                      job->segment_index);
  }

  Segment& seg = job->segments[job->segment_index];
  if (seg.lock != kNoLock && job->held_lock == seg.lock) {
    locks_.release(*job, seg.lock);
  }

  bool finished = false;
  if (job->segment_index + 1 < job->segments.size()) {
    ++job->segment_index;
    job->remaining = job->segments[job->segment_index].length;
  } else {
    remove_active(*job);
    finished = true;
  }

  dispatch();

  if (finished) {
    notify_complete(*job);
    if (idle()) notify_idle();
  }
}

}  // namespace frap::sched
