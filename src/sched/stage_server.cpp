#include "sched/stage_server.h"

#include <algorithm>

#include "util/check.h"

namespace frap::sched {

StageServer::StageServer(sim::Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void StageServer::submit(Job& job) {
  FRAP_EXPECTS(!job.on_server);
  FRAP_EXPECTS(!job.segments.empty());
  job.on_server = true;
  job.segment_index = 0;
  job.remaining = job.segments[0].length;
  job.held_lock = kNoLock;
  job.key = PriorityKey{job.priority_value, next_seq_++};
  for (const auto& seg : job.segments) {
    if (seg.lock != kNoLock) locks_.note_user(seg.lock, job.priority_value);
  }
  active_.push_back(&job);
  dispatch();
}

void StageServer::abort(Job& job) {
  if (!job.on_server) return;
  auto it = std::find(active_.begin(), active_.end(), &job);
  if (it == active_.end()) return;  // on some other server
  if (running_ == &job) preempt_running();
  if (job.held_lock != kNoLock) locks_.release(job, job.held_lock);
  remove_active(job);
  dispatch();
  if (idle() && on_idle_) on_idle_();
}

Job* StageServer::pick_next() {
  if (active_.empty()) return nullptr;
  Job* best = *std::min_element(
      active_.begin(), active_.end(),
      [](const Job* a, const Job* b) { return a->key < b->key; });
  const Segment& seg = best->segments[best->segment_index];
  if (seg.lock != kNoLock && best->held_lock != seg.lock &&
      !locks_.can_acquire(*best, seg.lock)) {
    // Priority inheritance: the holder blocking `best` runs in its place.
    Job* blk = locks_.blocker(*best, seg.lock);
    FRAP_ASSERT(blk != nullptr && blk != best);
    FRAP_ASSERT(blk->on_server);
    return blk;
  }
  return best;
}

void StageServer::set_speed(double speed) {
  FRAP_EXPECTS(speed > 0);
  if (speed == speed_) return;
  // Bank the running job's progress at the old speed, switch, redispatch
  // (the same job resumes with its completion event recomputed).
  Job* resumed = running_;
  if (resumed != nullptr) preempt_running();
  speed_ = speed;
  if (resumed != nullptr || !active_.empty()) dispatch();
}

void StageServer::preempt_running() {
  FRAP_ASSERT(running_ != nullptr);
  const Duration elapsed = (sim_.now() - run_started_) * speed_;
  running_->remaining = std::max(0.0, running_->remaining - elapsed);
  if (timeline_ != nullptr) {
    timeline_->record(running_->id, run_started_, sim_.now(),
                      running_->segment_index);
  }
  sim_.cancel(completion_event_);
  completion_event_ = sim::kInvalidEventId;
  running_ = nullptr;
}

void StageServer::dispatch() {
  Job* next = pick_next();
  if (next != running_) {
    if (running_ != nullptr) {
      preempt_running();
      ++preemptions_;
    }
    if (next != nullptr) {
      running_ = next;
      next->has_started = true;
      run_started_ = sim_.now();
      Segment& seg = next->segments[next->segment_index];
      if (seg.lock != kNoLock && next->held_lock != seg.lock) {
        locks_.acquire(*next, seg.lock);
      }
      completion_event_ = sim_.after(next->remaining / speed_,
                                     [this] { handle_segment_completion(); });
    }
  }
  // Meter transitions only on busy <-> idle edges.
  if (running_ != nullptr && !meter_busy_) {
    meter_.set_busy(sim_.now());
    meter_busy_ = true;
  } else if (running_ == nullptr && meter_busy_) {
    meter_.set_idle(sim_.now());
    meter_busy_ = false;
  }
}

void StageServer::handle_segment_completion() {
  Job* job = running_;
  FRAP_ASSERT(job != nullptr);
  completion_event_ = sim::kInvalidEventId;
  running_ = nullptr;
  job->remaining = 0;
  if (timeline_ != nullptr) {
    timeline_->record(job->id, run_started_, sim_.now(),
                      job->segment_index);
  }

  Segment& seg = job->segments[job->segment_index];
  if (seg.lock != kNoLock && job->held_lock == seg.lock) {
    locks_.release(*job, seg.lock);
  }

  bool finished = false;
  if (job->segment_index + 1 < job->segments.size()) {
    ++job->segment_index;
    job->remaining = job->segments[job->segment_index].length;
  } else {
    remove_active(*job);
    finished = true;
  }

  dispatch();

  if (finished) {
    if (on_complete_) on_complete_(*job);
    if (idle() && on_idle_) on_idle_();
  }
}

void StageServer::remove_active(Job& job) {
  auto it = std::find(active_.begin(), active_.end(), &job);
  FRAP_ASSERT(it != active_.end());
  active_.erase(it);
  job.on_server = false;
}

}  // namespace frap::sched
