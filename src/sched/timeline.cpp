#include "sched/timeline.h"

#include <algorithm>

namespace frap::sched {

Duration Timeline::executed(std::uint64_t job_id) const {
  Duration total = 0;
  for (const auto& iv : intervals_) {
    if (iv.job_id == job_id) total += iv.end - iv.start;
  }
  return total;
}

bool Timeline::non_overlapping() const {
  std::vector<RunInterval> sorted = intervals_;
  std::sort(sorted.begin(), sorted.end(),
            [](const RunInterval& a, const RunInterval& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].start < sorted[i - 1].end - 1e-12) return false;
  }
  return true;
}

void Timeline::dump(std::ostream& os) const {
  for (const auto& iv : intervals_) {
    os << iv.job_id << '\t' << iv.start << '\t' << iv.end << '\t'
       << iv.segment << '\n';
  }
}

}  // namespace frap::sched
