// Urgency-inversion analysis: the alpha parameter of Eq. 2 / Eq. 12.
//
// alpha = min over priority-sorted task pairs (T_hi at least as high
// priority as T_lo) of D_lo / D_hi. An *urgency inversion* is a pair where a
// task with a longer relative deadline got equal-or-higher priority; alpha
// measures the worst such inversion and scales the feasible region:
//   sum_j f(U_j) <= alpha.
// For deadline-monotonic scheduling alpha = 1; for random priorities over a
// deadline range [D_least, D_most], alpha = D_least / D_most.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "sched/priority.h"
#include "util/time.h"

namespace frap::sched {

struct TaskUrgency {
  PriorityValue priority;  // smaller = more urgent (scheduler's view)
  Duration deadline;       // relative end-to-end deadline (true urgency)
};

// Exact alpha for a closed task set. Returns 1 for empty or singleton sets
// (no pair can invert), and is always in (0, 1].
double compute_alpha(std::span<const TaskUrgency> tasks);

// Conservative online alpha for an open (aperiodic) system: tasks are
// reported as they are admitted and alpha only ratchets down. The estimate
// pairs every new task against the extreme deadlines of all tasks ever seen
// at equal-or-higher / equal-or-lower priority, so it converges to the exact
// alpha of the arrival history.
class OnlineAlphaEstimator {
 public:
  void observe(const TaskUrgency& t);

  // The alpha that WOULD result from observing `t`, without mutating the
  // estimator. Used by adaptive admission to test a candidate task against
  // the alpha its own arrival would induce.
  double preview(const TaskUrgency& t) const;

  // Current conservative estimate; 1 until an inversion is observed.
  double alpha() const { return alpha_; }

 private:
  // For each distinct priority value: the largest and smallest deadline seen.
  struct Range {
    Duration min_d;
    Duration max_d;
  };
  std::map<PriorityValue, Range> by_priority_;
  double alpha_ = 1.0;
};

}  // namespace frap::sched
