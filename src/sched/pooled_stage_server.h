// A pipeline stage backed by a POOL of m identical processors under global
// preemptive fixed-priority scheduling: at any instant the m highest-
// priority active jobs run, one per processor (work-conserving, migration
// allowed at preemption points, zero migration cost).
//
// This extends the paper's single-resource-per-stage model toward the
// multiprocessor setting of the authors' companion work on liquid tasks
// [Abdelzaher et al., RTAS 2002]; bench/multiproc_stage uses it to map the
// empirical schedulable-utilization frontier as m grows. Critical sections
// are not supported here (PCP is defined for uniprocessors); jobs must be
// lock-free.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/utilization_meter.h"
#include "sched/job.h"
#include "sched/timeline.h"
#include "sim/simulator.h"

namespace frap::sched {

class PooledStageServer {
 public:
  PooledStageServer(sim::Simulator& sim, std::size_t num_processors,
                    std::string name = {});

  PooledStageServer(const PooledStageServer&) = delete;
  PooledStageServer& operator=(const PooledStageServer&) = delete;

  std::size_t num_processors() const { return procs_.size(); }

  void set_on_complete(std::function<void(Job&)> cb) {
    on_complete_ = std::move(cb);
  }
  void set_on_idle(std::function<void()> cb) { on_idle_ = std::move(cb); }

  // Admits a lock-free job to the pool.
  void submit(Job& job);

  // Removes a job (running or queued). No-op if not on this server.
  void abort(Job& job);

  bool idle() const { return active_.empty(); }
  std::size_t active_jobs() const { return active_.size(); }

  // Busy fraction of the whole pool over [from, to]: total processor busy
  // time divided by m * (to - from).
  double pool_utilization(Time from, Time to) const;

  const metrics::UtilizationMeter& meter(std::size_t processor) const {
    return procs_[processor].meter;
  }

  std::uint64_t preemptions() const { return preemptions_; }

  // Optional Gantt capture across the pool (intervals from different
  // processors may legitimately overlap in time).
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  // Uniform speed factor for all processors in the pool (> 0, default 1);
  // see StageServer::set_speed for semantics.
  void set_speed(double speed);
  double speed() const { return speed_; }

 private:
  struct Processor {
    Job* running = nullptr;
    Time started = kTimeZero;
    sim::EventId completion = sim::kInvalidEventId;
    metrics::UtilizationMeter meter;
    bool meter_busy = false;
  };

  // Reconciles the processors with the current top-m job set.
  void dispatch();
  void stop_processor(Processor& p);
  void handle_completion(std::size_t processor);
  void remove_active(Job& job);

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Processor> procs_;
  std::vector<Job*> active_;
  std::function<void(Job&)> on_complete_;
  std::function<void()> on_idle_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t preemptions_ = 0;
  Timeline* timeline_ = nullptr;
  double speed_ = 1.0;
};

}  // namespace frap::sched
