// A pipeline stage backed by a POOL of m identical processors under global
// preemptive scheduling: at any instant the m most urgent active jobs run,
// one per processor (work-conserving, migration allowed at preemption
// points, zero migration cost). The dispatch order comes from the pluggable
// policy — fixed-priority by default; global EDF (gEDF) is simply this
// executor constructed with edf_policy().
//
// This extends the paper's single-resource-per-stage model toward the
// multiprocessor setting of the authors' companion work on liquid tasks
// [Abdelzaher et al., RTAS 2002]; bench/multiproc_stage uses it to map the
// empirical schedulable-utilization frontier as m grows. Critical sections
// are not supported here under ANY policy (PCP is defined for
// uniprocessors); jobs must be lock-free.
#pragma once

#include <string>

#include "sched/stage_executor.h"

namespace frap::sched {

class PooledStageServer : public StageExecutor {
 public:
  PooledStageServer(sim::Simulator& sim, std::size_t num_processors,
                    std::string name = {},
                    const SchedulingPolicy& policy = fixed_priority_policy());

  std::size_t num_processors() const { return procs_.size(); }

  // Admits a lock-free job to the pool.
  void submit(Job& job) override;

  // Removes a job (running or queued). No-op if not on this server.
  void abort(Job& job) override;

  // Busy fraction of the whole pool over [from, to]: total processor busy
  // time divided by m * (to - from).
  double pool_utilization(Time from, Time to) const;

  // Processor 0's meter (the StageExecutor surface exposes one meter; use
  // the indexed overload or pool_utilization for the rest of the pool).
  const metrics::UtilizationMeter& meter() const override {
    return procs_[0].meter;
  }
  const metrics::UtilizationMeter& meter(std::size_t processor) const {
    return procs_[processor].meter;
  }

  // Uniform speed factor for all processors in the pool (> 0, default 1);
  // see StageExecutor::set_speed for semantics.
  void set_speed(double speed) override;

 private:
  struct Processor {
    Job* running = nullptr;
    Time started = kTimeZero;
    sim::EventId completion = sim::kInvalidEventId;
    metrics::UtilizationMeter meter;
    bool meter_busy = false;
  };

  // Reconciles the processors with the current top-m job set.
  void dispatch();
  void stop_processor(Processor& p);
  void handle_completion(std::size_t processor);

  Duration in_progress_remaining(const Job& job) const override;

  std::vector<Processor> procs_;
};

}  // namespace frap::sched
