// ASCII rendering of execution timelines — a quick visual check of who ran
// when, straight from a Timeline capture:
//
//   job 1 |##....####|
//   job 2 |..####....|
//
// Each row is one job; '#' marks wall time where the job executed (any
// coverage within a cell), '.' marks time it did not.
#pragma once

#include <string>

#include "sched/timeline.h"

namespace frap::sched {

// Renders all jobs in the timeline over [from, to] using `width` character
// cells. Rows are ordered by first execution. Requires to > from and
// width >= 1. Returns an empty string for an empty timeline.
std::string render_ascii_gantt(const Timeline& timeline, Time from, Time to,
                               std::size_t width = 60);

}  // namespace frap::sched
