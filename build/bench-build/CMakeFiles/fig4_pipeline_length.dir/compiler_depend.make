# Empty compiler generated dependencies file for fig4_pipeline_length.
# This may be replaced when dependencies are built.
