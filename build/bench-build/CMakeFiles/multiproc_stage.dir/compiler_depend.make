# Empty compiler generated dependencies file for multiproc_stage.
# This may be replaced when dependencies are built.
