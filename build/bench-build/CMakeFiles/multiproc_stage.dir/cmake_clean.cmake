file(REMOVE_RECURSE
  "../bench/multiproc_stage"
  "../bench/multiproc_stage.pdb"
  "CMakeFiles/multiproc_stage.dir/multiproc_stage.cpp.o"
  "CMakeFiles/multiproc_stage.dir/multiproc_stage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiproc_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
