file(REMOVE_RECURSE
  "../bench/ablation_blocking"
  "../bench/ablation_blocking.pdb"
  "CMakeFiles/ablation_blocking.dir/ablation_blocking.cpp.o"
  "CMakeFiles/ablation_blocking.dir/ablation_blocking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
