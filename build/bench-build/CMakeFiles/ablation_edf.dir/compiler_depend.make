# Empty compiler generated dependencies file for ablation_edf.
# This may be replaced when dependencies are built.
