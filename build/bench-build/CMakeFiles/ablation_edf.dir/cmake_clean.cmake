file(REMOVE_RECURSE
  "../bench/ablation_edf"
  "../bench/ablation_edf.pdb"
  "CMakeFiles/ablation_edf.dir/ablation_edf.cpp.o"
  "CMakeFiles/ablation_edf.dir/ablation_edf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
