# Empty dependencies file for ablation_deadline_split.
# This may be replaced when dependencies are built.
