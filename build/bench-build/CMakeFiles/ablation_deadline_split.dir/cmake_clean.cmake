file(REMOVE_RECURSE
  "../bench/ablation_deadline_split"
  "../bench/ablation_deadline_split.pdb"
  "CMakeFiles/ablation_deadline_split.dir/ablation_deadline_split.cpp.o"
  "CMakeFiles/ablation_deadline_split.dir/ablation_deadline_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadline_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
