file(REMOVE_RECURSE
  "../bench/fig6_load_imbalance"
  "../bench/fig6_load_imbalance.pdb"
  "CMakeFiles/fig6_load_imbalance.dir/fig6_load_imbalance.cpp.o"
  "CMakeFiles/fig6_load_imbalance.dir/fig6_load_imbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_load_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
