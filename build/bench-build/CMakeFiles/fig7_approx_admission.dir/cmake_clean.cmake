file(REMOVE_RECURSE
  "../bench/fig7_approx_admission"
  "../bench/fig7_approx_admission.pdb"
  "CMakeFiles/fig7_approx_admission.dir/fig7_approx_admission.cpp.o"
  "CMakeFiles/fig7_approx_admission.dir/fig7_approx_admission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_approx_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
