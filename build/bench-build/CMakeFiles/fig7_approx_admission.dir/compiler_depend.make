# Empty compiler generated dependencies file for fig7_approx_admission.
# This may be replaced when dependencies are built.
