# Empty compiler generated dependencies file for fig5_task_resolution.
# This may be replaced when dependencies are built.
