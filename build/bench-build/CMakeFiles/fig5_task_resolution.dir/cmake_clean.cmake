file(REMOVE_RECURSE
  "../bench/fig5_task_resolution"
  "../bench/fig5_task_resolution.pdb"
  "CMakeFiles/fig5_task_resolution.dir/fig5_task_resolution.cpp.o"
  "CMakeFiles/fig5_task_resolution.dir/fig5_task_resolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_task_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
