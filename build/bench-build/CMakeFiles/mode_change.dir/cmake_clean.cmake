file(REMOVE_RECURSE
  "../bench/mode_change"
  "../bench/mode_change.pdb"
  "CMakeFiles/mode_change.dir/mode_change.cpp.o"
  "CMakeFiles/mode_change.dir/mode_change.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
