# Empty dependencies file for mode_change.
# This may be replaced when dependencies are built.
