# Empty dependencies file for failure_degradation.
# This may be replaced when dependencies are built.
