file(REMOVE_RECURSE
  "../bench/failure_degradation"
  "../bench/failure_degradation.pdb"
  "CMakeFiles/failure_degradation.dir/failure_degradation.cpp.o"
  "CMakeFiles/failure_degradation.dir/failure_degradation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
