# Empty compiler generated dependencies file for table1_tsce.
# This may be replaced when dependencies are built.
