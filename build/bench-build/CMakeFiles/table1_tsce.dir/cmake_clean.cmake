file(REMOVE_RECURSE
  "../bench/table1_tsce"
  "../bench/table1_tsce.pdb"
  "CMakeFiles/table1_tsce.dir/table1_tsce.cpp.o"
  "CMakeFiles/table1_tsce.dir/table1_tsce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tsce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
