# Empty dependencies file for robustness_distributions.
# This may be replaced when dependencies are built.
