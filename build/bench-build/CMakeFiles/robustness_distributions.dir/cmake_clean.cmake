file(REMOVE_RECURSE
  "../bench/robustness_distributions"
  "../bench/robustness_distributions.pdb"
  "CMakeFiles/robustness_distributions.dir/robustness_distributions.cpp.o"
  "CMakeFiles/robustness_distributions.dir/robustness_distributions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
