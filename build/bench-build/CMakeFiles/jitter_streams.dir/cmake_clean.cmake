file(REMOVE_RECURSE
  "../bench/jitter_streams"
  "../bench/jitter_streams.pdb"
  "CMakeFiles/jitter_streams.dir/jitter_streams.cpp.o"
  "CMakeFiles/jitter_streams.dir/jitter_streams.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
