# Empty dependencies file for jitter_streams.
# This may be replaced when dependencies are built.
