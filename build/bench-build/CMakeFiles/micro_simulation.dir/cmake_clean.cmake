file(REMOVE_RECURSE
  "../bench/micro_simulation"
  "../bench/micro_simulation.pdb"
  "CMakeFiles/micro_simulation.dir/micro_simulation.cpp.o"
  "CMakeFiles/micro_simulation.dir/micro_simulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
