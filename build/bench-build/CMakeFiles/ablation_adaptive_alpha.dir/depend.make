# Empty dependencies file for ablation_adaptive_alpha.
# This may be replaced when dependencies are built.
