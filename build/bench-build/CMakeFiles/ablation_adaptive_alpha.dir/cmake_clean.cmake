file(REMOVE_RECURSE
  "../bench/ablation_adaptive_alpha"
  "../bench/ablation_adaptive_alpha.pdb"
  "CMakeFiles/ablation_adaptive_alpha.dir/ablation_adaptive_alpha.cpp.o"
  "CMakeFiles/ablation_adaptive_alpha.dir/ablation_adaptive_alpha.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
