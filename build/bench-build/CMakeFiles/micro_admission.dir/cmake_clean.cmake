file(REMOVE_RECURSE
  "../bench/micro_admission"
  "../bench/micro_admission.pdb"
  "CMakeFiles/micro_admission.dir/micro_admission.cpp.o"
  "CMakeFiles/micro_admission.dir/micro_admission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
