# Empty compiler generated dependencies file for ablation_idle_reset.
# This may be replaced when dependencies are built.
