file(REMOVE_RECURSE
  "../bench/ablation_idle_reset"
  "../bench/ablation_idle_reset.pdb"
  "CMakeFiles/ablation_idle_reset.dir/ablation_idle_reset.cpp.o"
  "CMakeFiles/ablation_idle_reset.dir/ablation_idle_reset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idle_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
