# Empty compiler generated dependencies file for variance_check.
# This may be replaced when dependencies are built.
