file(REMOVE_RECURSE
  "../bench/variance_check"
  "../bench/variance_check.pdb"
  "CMakeFiles/variance_check.dir/variance_check.cpp.o"
  "CMakeFiles/variance_check.dir/variance_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
