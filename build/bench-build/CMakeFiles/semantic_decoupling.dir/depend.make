# Empty dependencies file for semantic_decoupling.
# This may be replaced when dependencies are built.
