file(REMOVE_RECURSE
  "../bench/semantic_decoupling"
  "../bench/semantic_decoupling.pdb"
  "CMakeFiles/semantic_decoupling.dir/semantic_decoupling.cpp.o"
  "CMakeFiles/semantic_decoupling.dir/semantic_decoupling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
