# Empty compiler generated dependencies file for surface_region.
# This may be replaced when dependencies are built.
