file(REMOVE_RECURSE
  "../bench/surface_region"
  "../bench/surface_region.pdb"
  "CMakeFiles/surface_region.dir/surface_region.cpp.o"
  "CMakeFiles/surface_region.dir/surface_region.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surface_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
