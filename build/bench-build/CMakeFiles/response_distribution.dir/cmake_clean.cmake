file(REMOVE_RECURSE
  "../bench/response_distribution"
  "../bench/response_distribution.pdb"
  "CMakeFiles/response_distribution.dir/response_distribution.cpp.o"
  "CMakeFiles/response_distribution.dir/response_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
