# Empty dependencies file for response_distribution.
# This may be replaced when dependencies are built.
