# Empty dependencies file for dag_taskgraph.
# This may be replaced when dependencies are built.
