file(REMOVE_RECURSE
  "../bench/dag_taskgraph"
  "../bench/dag_taskgraph.pdb"
  "CMakeFiles/dag_taskgraph.dir/dag_taskgraph.cpp.o"
  "CMakeFiles/dag_taskgraph.dir/dag_taskgraph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
