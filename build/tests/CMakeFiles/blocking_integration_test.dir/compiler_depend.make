# Empty compiler generated dependencies file for blocking_integration_test.
# This may be replaced when dependencies are built.
