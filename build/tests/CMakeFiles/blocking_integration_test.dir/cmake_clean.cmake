file(REMOVE_RECURSE
  "CMakeFiles/blocking_integration_test.dir/blocking_integration_test.cpp.o"
  "CMakeFiles/blocking_integration_test.dir/blocking_integration_test.cpp.o.d"
  "blocking_integration_test"
  "blocking_integration_test.pdb"
  "blocking_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
