# Empty dependencies file for synthetic_utilization_test.
# This may be replaced when dependencies are built.
