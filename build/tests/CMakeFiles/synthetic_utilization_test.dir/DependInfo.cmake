
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/synthetic_utilization_test.cpp" "tests/CMakeFiles/synthetic_utilization_test.dir/synthetic_utilization_test.cpp.o" "gcc" "tests/CMakeFiles/synthetic_utilization_test.dir/synthetic_utilization_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/frap_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/frap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/frap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/frap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/frap_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/frap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
