file(REMOVE_RECURSE
  "CMakeFiles/synthetic_utilization_test.dir/synthetic_utilization_test.cpp.o"
  "CMakeFiles/synthetic_utilization_test.dir/synthetic_utilization_test.cpp.o.d"
  "synthetic_utilization_test"
  "synthetic_utilization_test.pdb"
  "synthetic_utilization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_utilization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
