file(REMOVE_RECURSE
  "CMakeFiles/admission_audit_test.dir/admission_audit_test.cpp.o"
  "CMakeFiles/admission_audit_test.dir/admission_audit_test.cpp.o.d"
  "admission_audit_test"
  "admission_audit_test.pdb"
  "admission_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
