file(REMOVE_RECURSE
  "CMakeFiles/pcp_test.dir/pcp_test.cpp.o"
  "CMakeFiles/pcp_test.dir/pcp_test.cpp.o.d"
  "pcp_test"
  "pcp_test.pdb"
  "pcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
