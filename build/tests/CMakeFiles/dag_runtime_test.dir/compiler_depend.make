# Empty compiler generated dependencies file for dag_runtime_test.
# This may be replaced when dependencies are built.
