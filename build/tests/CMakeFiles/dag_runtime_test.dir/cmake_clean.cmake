file(REMOVE_RECURSE
  "CMakeFiles/dag_runtime_test.dir/dag_runtime_test.cpp.o"
  "CMakeFiles/dag_runtime_test.dir/dag_runtime_test.cpp.o.d"
  "dag_runtime_test"
  "dag_runtime_test.pdb"
  "dag_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
