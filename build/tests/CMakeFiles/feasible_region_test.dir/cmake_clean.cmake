file(REMOVE_RECURSE
  "CMakeFiles/feasible_region_test.dir/feasible_region_test.cpp.o"
  "CMakeFiles/feasible_region_test.dir/feasible_region_test.cpp.o.d"
  "feasible_region_test"
  "feasible_region_test.pdb"
  "feasible_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasible_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
