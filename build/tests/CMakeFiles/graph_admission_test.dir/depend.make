# Empty dependencies file for graph_admission_test.
# This may be replaced when dependencies are built.
