file(REMOVE_RECURSE
  "CMakeFiles/graph_admission_test.dir/graph_admission_test.cpp.o"
  "CMakeFiles/graph_admission_test.dir/graph_admission_test.cpp.o.d"
  "graph_admission_test"
  "graph_admission_test.pdb"
  "graph_admission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
