file(REMOVE_RECURSE
  "CMakeFiles/stage_delay_test.dir/stage_delay_test.cpp.o"
  "CMakeFiles/stage_delay_test.dir/stage_delay_test.cpp.o.d"
  "stage_delay_test"
  "stage_delay_test.pdb"
  "stage_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
