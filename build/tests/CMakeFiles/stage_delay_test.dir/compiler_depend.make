# Empty compiler generated dependencies file for stage_delay_test.
# This may be replaced when dependencies are built.
