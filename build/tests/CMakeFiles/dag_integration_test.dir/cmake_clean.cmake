file(REMOVE_RECURSE
  "CMakeFiles/dag_integration_test.dir/dag_integration_test.cpp.o"
  "CMakeFiles/dag_integration_test.dir/dag_integration_test.cpp.o.d"
  "dag_integration_test"
  "dag_integration_test.pdb"
  "dag_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
