file(REMOVE_RECURSE
  "CMakeFiles/region_geometry_test.dir/region_geometry_test.cpp.o"
  "CMakeFiles/region_geometry_test.dir/region_geometry_test.cpp.o.d"
  "region_geometry_test"
  "region_geometry_test.pdb"
  "region_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
