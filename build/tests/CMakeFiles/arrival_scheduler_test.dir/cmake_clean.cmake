file(REMOVE_RECURSE
  "CMakeFiles/arrival_scheduler_test.dir/arrival_scheduler_test.cpp.o"
  "CMakeFiles/arrival_scheduler_test.dir/arrival_scheduler_test.cpp.o.d"
  "arrival_scheduler_test"
  "arrival_scheduler_test.pdb"
  "arrival_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
