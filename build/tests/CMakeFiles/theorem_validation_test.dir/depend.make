# Empty dependencies file for theorem_validation_test.
# This may be replaced when dependencies are built.
