file(REMOVE_RECURSE
  "CMakeFiles/theorem_validation_test.dir/theorem_validation_test.cpp.o"
  "CMakeFiles/theorem_validation_test.dir/theorem_validation_test.cpp.o.d"
  "theorem_validation_test"
  "theorem_validation_test.pdb"
  "theorem_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
