# Empty compiler generated dependencies file for pooled_stage_server_test.
# This may be replaced when dependencies are built.
