file(REMOVE_RECURSE
  "CMakeFiles/pooled_stage_server_test.dir/pooled_stage_server_test.cpp.o"
  "CMakeFiles/pooled_stage_server_test.dir/pooled_stage_server_test.cpp.o.d"
  "pooled_stage_server_test"
  "pooled_stage_server_test.pdb"
  "pooled_stage_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pooled_stage_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
