# Empty dependencies file for pipeline_runtime_test.
# This may be replaced when dependencies are built.
