file(REMOVE_RECURSE
  "CMakeFiles/pipeline_runtime_test.dir/pipeline_runtime_test.cpp.o"
  "CMakeFiles/pipeline_runtime_test.dir/pipeline_runtime_test.cpp.o.d"
  "pipeline_runtime_test"
  "pipeline_runtime_test.pdb"
  "pipeline_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
