file(REMOVE_RECURSE
  "CMakeFiles/delay_bound_test.dir/delay_bound_test.cpp.o"
  "CMakeFiles/delay_bound_test.dir/delay_bound_test.cpp.o.d"
  "delay_bound_test"
  "delay_bound_test.pdb"
  "delay_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
