# Empty dependencies file for delay_bound_test.
# This may be replaced when dependencies are built.
