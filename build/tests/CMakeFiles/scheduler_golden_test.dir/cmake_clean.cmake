file(REMOVE_RECURSE
  "CMakeFiles/scheduler_golden_test.dir/scheduler_golden_test.cpp.o"
  "CMakeFiles/scheduler_golden_test.dir/scheduler_golden_test.cpp.o.d"
  "scheduler_golden_test"
  "scheduler_golden_test.pdb"
  "scheduler_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
