# Empty compiler generated dependencies file for scheduler_golden_test.
# This may be replaced when dependencies are built.
