file(REMOVE_RECURSE
  "CMakeFiles/stage_server_test.dir/stage_server_test.cpp.o"
  "CMakeFiles/stage_server_test.dir/stage_server_test.cpp.o.d"
  "stage_server_test"
  "stage_server_test.pdb"
  "stage_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
