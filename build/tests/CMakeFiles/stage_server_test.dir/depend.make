# Empty dependencies file for stage_server_test.
# This may be replaced when dependencies are built.
