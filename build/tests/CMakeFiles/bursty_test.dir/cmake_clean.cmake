file(REMOVE_RECURSE
  "CMakeFiles/bursty_test.dir/bursty_test.cpp.o"
  "CMakeFiles/bursty_test.dir/bursty_test.cpp.o.d"
  "bursty_test"
  "bursty_test.pdb"
  "bursty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
