# Empty dependencies file for bursty_test.
# This may be replaced when dependencies are built.
