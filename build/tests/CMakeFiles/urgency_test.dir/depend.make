# Empty dependencies file for urgency_test.
# This may be replaced when dependencies are built.
