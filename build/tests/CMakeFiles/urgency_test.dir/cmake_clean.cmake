file(REMOVE_RECURSE
  "CMakeFiles/urgency_test.dir/urgency_test.cpp.o"
  "CMakeFiles/urgency_test.dir/urgency_test.cpp.o.d"
  "urgency_test"
  "urgency_test.pdb"
  "urgency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urgency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
