# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_web_server_farm "/root/repo/build/examples/web_server_farm")
set_tests_properties(example_web_server_farm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shipboard_tsce "/root/repo/build/examples/shipboard_tsce")
set_tests_properties(example_shipboard_tsce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_radar_taskgraph "/root/repo/build/examples/radar_taskgraph")
set_tests_properties(example_radar_taskgraph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_replay")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_latency_headroom "/root/repo/build/examples/latency_headroom")
set_tests_properties(example_latency_headroom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_experiment_cli "/root/repo/build/examples/experiment_cli" "--stages=2" "--load=1.0" "--duration=5" "--warmup=1")
set_tests_properties(example_experiment_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_experiment_cli_help "/root/repo/build/examples/experiment_cli" "--help")
set_tests_properties(example_experiment_cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gantt_demo "/root/repo/build/examples/gantt_demo")
set_tests_properties(example_gantt_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sweep_csv "/root/repo/build/examples/sweep_csv" "--duration=5" "--warmup=1" "--load-from=100" "--load-to=120" "--reps=2")
set_tests_properties(example_sweep_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
