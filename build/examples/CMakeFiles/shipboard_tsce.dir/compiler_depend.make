# Empty compiler generated dependencies file for shipboard_tsce.
# This may be replaced when dependencies are built.
