file(REMOVE_RECURSE
  "CMakeFiles/shipboard_tsce.dir/shipboard_tsce.cpp.o"
  "CMakeFiles/shipboard_tsce.dir/shipboard_tsce.cpp.o.d"
  "shipboard_tsce"
  "shipboard_tsce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shipboard_tsce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
