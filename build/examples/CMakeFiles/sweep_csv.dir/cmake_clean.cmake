file(REMOVE_RECURSE
  "CMakeFiles/sweep_csv.dir/sweep_csv.cpp.o"
  "CMakeFiles/sweep_csv.dir/sweep_csv.cpp.o.d"
  "sweep_csv"
  "sweep_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
