file(REMOVE_RECURSE
  "CMakeFiles/radar_taskgraph.dir/radar_taskgraph.cpp.o"
  "CMakeFiles/radar_taskgraph.dir/radar_taskgraph.cpp.o.d"
  "radar_taskgraph"
  "radar_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
