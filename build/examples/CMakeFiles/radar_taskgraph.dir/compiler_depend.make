# Empty compiler generated dependencies file for radar_taskgraph.
# This may be replaced when dependencies are built.
