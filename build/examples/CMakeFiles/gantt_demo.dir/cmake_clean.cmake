file(REMOVE_RECURSE
  "CMakeFiles/gantt_demo.dir/gantt_demo.cpp.o"
  "CMakeFiles/gantt_demo.dir/gantt_demo.cpp.o.d"
  "gantt_demo"
  "gantt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
