# Empty dependencies file for gantt_demo.
# This may be replaced when dependencies are built.
