# Empty compiler generated dependencies file for latency_headroom.
# This may be replaced when dependencies are built.
