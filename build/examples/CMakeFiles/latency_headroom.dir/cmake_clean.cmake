file(REMOVE_RECURSE
  "CMakeFiles/latency_headroom.dir/latency_headroom.cpp.o"
  "CMakeFiles/latency_headroom.dir/latency_headroom.cpp.o.d"
  "latency_headroom"
  "latency_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
