file(REMOVE_RECURSE
  "CMakeFiles/web_server_farm.dir/web_server_farm.cpp.o"
  "CMakeFiles/web_server_farm.dir/web_server_farm.cpp.o.d"
  "web_server_farm"
  "web_server_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
