# Empty compiler generated dependencies file for web_server_farm.
# This may be replaced when dependencies are built.
