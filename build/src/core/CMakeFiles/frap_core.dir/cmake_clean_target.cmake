file(REMOVE_RECURSE
  "libfrap_core.a"
)
