
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_alpha.cpp" "src/core/CMakeFiles/frap_core.dir/adaptive_alpha.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/adaptive_alpha.cpp.o.d"
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/frap_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/admission_audit.cpp" "src/core/CMakeFiles/frap_core.dir/admission_audit.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/admission_audit.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/frap_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/certification.cpp" "src/core/CMakeFiles/frap_core.dir/certification.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/certification.cpp.o.d"
  "/root/repo/src/core/delay_bound.cpp" "src/core/CMakeFiles/frap_core.dir/delay_bound.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/delay_bound.cpp.o.d"
  "/root/repo/src/core/feasible_region.cpp" "src/core/CMakeFiles/frap_core.dir/feasible_region.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/feasible_region.cpp.o.d"
  "/root/repo/src/core/region_geometry.cpp" "src/core/CMakeFiles/frap_core.dir/region_geometry.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/region_geometry.cpp.o.d"
  "/root/repo/src/core/reservation.cpp" "src/core/CMakeFiles/frap_core.dir/reservation.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/reservation.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/frap_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/stage_delay.cpp" "src/core/CMakeFiles/frap_core.dir/stage_delay.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/stage_delay.cpp.o.d"
  "/root/repo/src/core/synthetic_utilization.cpp" "src/core/CMakeFiles/frap_core.dir/synthetic_utilization.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/synthetic_utilization.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/frap_core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/task.cpp.o.d"
  "/root/repo/src/core/task_graph.cpp" "src/core/CMakeFiles/frap_core.dir/task_graph.cpp.o" "gcc" "src/core/CMakeFiles/frap_core.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/frap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/frap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/frap_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
