file(REMOVE_RECURSE
  "CMakeFiles/frap_core.dir/adaptive_alpha.cpp.o"
  "CMakeFiles/frap_core.dir/adaptive_alpha.cpp.o.d"
  "CMakeFiles/frap_core.dir/admission.cpp.o"
  "CMakeFiles/frap_core.dir/admission.cpp.o.d"
  "CMakeFiles/frap_core.dir/admission_audit.cpp.o"
  "CMakeFiles/frap_core.dir/admission_audit.cpp.o.d"
  "CMakeFiles/frap_core.dir/baselines.cpp.o"
  "CMakeFiles/frap_core.dir/baselines.cpp.o.d"
  "CMakeFiles/frap_core.dir/certification.cpp.o"
  "CMakeFiles/frap_core.dir/certification.cpp.o.d"
  "CMakeFiles/frap_core.dir/delay_bound.cpp.o"
  "CMakeFiles/frap_core.dir/delay_bound.cpp.o.d"
  "CMakeFiles/frap_core.dir/feasible_region.cpp.o"
  "CMakeFiles/frap_core.dir/feasible_region.cpp.o.d"
  "CMakeFiles/frap_core.dir/region_geometry.cpp.o"
  "CMakeFiles/frap_core.dir/region_geometry.cpp.o.d"
  "CMakeFiles/frap_core.dir/reservation.cpp.o"
  "CMakeFiles/frap_core.dir/reservation.cpp.o.d"
  "CMakeFiles/frap_core.dir/sensitivity.cpp.o"
  "CMakeFiles/frap_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/frap_core.dir/stage_delay.cpp.o"
  "CMakeFiles/frap_core.dir/stage_delay.cpp.o.d"
  "CMakeFiles/frap_core.dir/synthetic_utilization.cpp.o"
  "CMakeFiles/frap_core.dir/synthetic_utilization.cpp.o.d"
  "CMakeFiles/frap_core.dir/task.cpp.o"
  "CMakeFiles/frap_core.dir/task.cpp.o.d"
  "CMakeFiles/frap_core.dir/task_graph.cpp.o"
  "CMakeFiles/frap_core.dir/task_graph.cpp.o.d"
  "libfrap_core.a"
  "libfrap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
