# Empty compiler generated dependencies file for frap_core.
# This may be replaced when dependencies are built.
