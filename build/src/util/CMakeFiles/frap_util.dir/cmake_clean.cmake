file(REMOVE_RECURSE
  "CMakeFiles/frap_util.dir/rng.cpp.o"
  "CMakeFiles/frap_util.dir/rng.cpp.o.d"
  "CMakeFiles/frap_util.dir/table.cpp.o"
  "CMakeFiles/frap_util.dir/table.cpp.o.d"
  "libfrap_util.a"
  "libfrap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
