# Empty dependencies file for frap_util.
# This may be replaced when dependencies are built.
