file(REMOVE_RECURSE
  "libfrap_util.a"
)
