# Empty compiler generated dependencies file for frap_util.
# This may be replaced when dependencies are built.
