file(REMOVE_RECURSE
  "CMakeFiles/frap_pipeline.dir/cli.cpp.o"
  "CMakeFiles/frap_pipeline.dir/cli.cpp.o.d"
  "CMakeFiles/frap_pipeline.dir/dag_runtime.cpp.o"
  "CMakeFiles/frap_pipeline.dir/dag_runtime.cpp.o.d"
  "CMakeFiles/frap_pipeline.dir/experiment.cpp.o"
  "CMakeFiles/frap_pipeline.dir/experiment.cpp.o.d"
  "CMakeFiles/frap_pipeline.dir/pipeline_runtime.cpp.o"
  "CMakeFiles/frap_pipeline.dir/pipeline_runtime.cpp.o.d"
  "CMakeFiles/frap_pipeline.dir/replication.cpp.o"
  "CMakeFiles/frap_pipeline.dir/replication.cpp.o.d"
  "CMakeFiles/frap_pipeline.dir/trace.cpp.o"
  "CMakeFiles/frap_pipeline.dir/trace.cpp.o.d"
  "CMakeFiles/frap_pipeline.dir/trace_analysis.cpp.o"
  "CMakeFiles/frap_pipeline.dir/trace_analysis.cpp.o.d"
  "libfrap_pipeline.a"
  "libfrap_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frap_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
