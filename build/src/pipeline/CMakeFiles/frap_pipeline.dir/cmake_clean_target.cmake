file(REMOVE_RECURSE
  "libfrap_pipeline.a"
)
