# Empty dependencies file for frap_pipeline.
# This may be replaced when dependencies are built.
