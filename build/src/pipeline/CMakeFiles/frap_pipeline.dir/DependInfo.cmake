
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/cli.cpp" "src/pipeline/CMakeFiles/frap_pipeline.dir/cli.cpp.o" "gcc" "src/pipeline/CMakeFiles/frap_pipeline.dir/cli.cpp.o.d"
  "/root/repo/src/pipeline/dag_runtime.cpp" "src/pipeline/CMakeFiles/frap_pipeline.dir/dag_runtime.cpp.o" "gcc" "src/pipeline/CMakeFiles/frap_pipeline.dir/dag_runtime.cpp.o.d"
  "/root/repo/src/pipeline/experiment.cpp" "src/pipeline/CMakeFiles/frap_pipeline.dir/experiment.cpp.o" "gcc" "src/pipeline/CMakeFiles/frap_pipeline.dir/experiment.cpp.o.d"
  "/root/repo/src/pipeline/pipeline_runtime.cpp" "src/pipeline/CMakeFiles/frap_pipeline.dir/pipeline_runtime.cpp.o" "gcc" "src/pipeline/CMakeFiles/frap_pipeline.dir/pipeline_runtime.cpp.o.d"
  "/root/repo/src/pipeline/replication.cpp" "src/pipeline/CMakeFiles/frap_pipeline.dir/replication.cpp.o" "gcc" "src/pipeline/CMakeFiles/frap_pipeline.dir/replication.cpp.o.d"
  "/root/repo/src/pipeline/trace.cpp" "src/pipeline/CMakeFiles/frap_pipeline.dir/trace.cpp.o" "gcc" "src/pipeline/CMakeFiles/frap_pipeline.dir/trace.cpp.o.d"
  "/root/repo/src/pipeline/trace_analysis.cpp" "src/pipeline/CMakeFiles/frap_pipeline.dir/trace_analysis.cpp.o" "gcc" "src/pipeline/CMakeFiles/frap_pipeline.dir/trace_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/frap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/frap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/frap_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/frap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/frap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
