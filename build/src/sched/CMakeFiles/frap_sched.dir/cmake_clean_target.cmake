file(REMOVE_RECURSE
  "libfrap_sched.a"
)
