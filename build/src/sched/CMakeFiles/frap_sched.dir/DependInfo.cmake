
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/gantt.cpp" "src/sched/CMakeFiles/frap_sched.dir/gantt.cpp.o" "gcc" "src/sched/CMakeFiles/frap_sched.dir/gantt.cpp.o.d"
  "/root/repo/src/sched/pcp.cpp" "src/sched/CMakeFiles/frap_sched.dir/pcp.cpp.o" "gcc" "src/sched/CMakeFiles/frap_sched.dir/pcp.cpp.o.d"
  "/root/repo/src/sched/pooled_stage_server.cpp" "src/sched/CMakeFiles/frap_sched.dir/pooled_stage_server.cpp.o" "gcc" "src/sched/CMakeFiles/frap_sched.dir/pooled_stage_server.cpp.o.d"
  "/root/repo/src/sched/stage_server.cpp" "src/sched/CMakeFiles/frap_sched.dir/stage_server.cpp.o" "gcc" "src/sched/CMakeFiles/frap_sched.dir/stage_server.cpp.o.d"
  "/root/repo/src/sched/timeline.cpp" "src/sched/CMakeFiles/frap_sched.dir/timeline.cpp.o" "gcc" "src/sched/CMakeFiles/frap_sched.dir/timeline.cpp.o.d"
  "/root/repo/src/sched/urgency.cpp" "src/sched/CMakeFiles/frap_sched.dir/urgency.cpp.o" "gcc" "src/sched/CMakeFiles/frap_sched.dir/urgency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/frap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/frap_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/frap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
