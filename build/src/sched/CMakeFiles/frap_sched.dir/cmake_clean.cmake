file(REMOVE_RECURSE
  "CMakeFiles/frap_sched.dir/gantt.cpp.o"
  "CMakeFiles/frap_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/frap_sched.dir/pcp.cpp.o"
  "CMakeFiles/frap_sched.dir/pcp.cpp.o.d"
  "CMakeFiles/frap_sched.dir/pooled_stage_server.cpp.o"
  "CMakeFiles/frap_sched.dir/pooled_stage_server.cpp.o.d"
  "CMakeFiles/frap_sched.dir/stage_server.cpp.o"
  "CMakeFiles/frap_sched.dir/stage_server.cpp.o.d"
  "CMakeFiles/frap_sched.dir/timeline.cpp.o"
  "CMakeFiles/frap_sched.dir/timeline.cpp.o.d"
  "CMakeFiles/frap_sched.dir/urgency.cpp.o"
  "CMakeFiles/frap_sched.dir/urgency.cpp.o.d"
  "libfrap_sched.a"
  "libfrap_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frap_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
