# Empty compiler generated dependencies file for frap_sched.
# This may be replaced when dependencies are built.
