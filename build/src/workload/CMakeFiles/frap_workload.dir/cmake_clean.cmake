file(REMOVE_RECURSE
  "CMakeFiles/frap_workload.dir/arrival_scheduler.cpp.o"
  "CMakeFiles/frap_workload.dir/arrival_scheduler.cpp.o.d"
  "CMakeFiles/frap_workload.dir/bursty.cpp.o"
  "CMakeFiles/frap_workload.dir/bursty.cpp.o.d"
  "CMakeFiles/frap_workload.dir/periodic.cpp.o"
  "CMakeFiles/frap_workload.dir/periodic.cpp.o.d"
  "CMakeFiles/frap_workload.dir/pipeline_workload.cpp.o"
  "CMakeFiles/frap_workload.dir/pipeline_workload.cpp.o.d"
  "CMakeFiles/frap_workload.dir/replay.cpp.o"
  "CMakeFiles/frap_workload.dir/replay.cpp.o.d"
  "CMakeFiles/frap_workload.dir/tsce.cpp.o"
  "CMakeFiles/frap_workload.dir/tsce.cpp.o.d"
  "libfrap_workload.a"
  "libfrap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
