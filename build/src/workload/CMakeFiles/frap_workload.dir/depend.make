# Empty dependencies file for frap_workload.
# This may be replaced when dependencies are built.
