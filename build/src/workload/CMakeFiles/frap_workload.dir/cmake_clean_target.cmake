file(REMOVE_RECURSE
  "libfrap_workload.a"
)
