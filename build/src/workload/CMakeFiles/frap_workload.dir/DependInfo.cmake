
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival_scheduler.cpp" "src/workload/CMakeFiles/frap_workload.dir/arrival_scheduler.cpp.o" "gcc" "src/workload/CMakeFiles/frap_workload.dir/arrival_scheduler.cpp.o.d"
  "/root/repo/src/workload/bursty.cpp" "src/workload/CMakeFiles/frap_workload.dir/bursty.cpp.o" "gcc" "src/workload/CMakeFiles/frap_workload.dir/bursty.cpp.o.d"
  "/root/repo/src/workload/periodic.cpp" "src/workload/CMakeFiles/frap_workload.dir/periodic.cpp.o" "gcc" "src/workload/CMakeFiles/frap_workload.dir/periodic.cpp.o.d"
  "/root/repo/src/workload/pipeline_workload.cpp" "src/workload/CMakeFiles/frap_workload.dir/pipeline_workload.cpp.o" "gcc" "src/workload/CMakeFiles/frap_workload.dir/pipeline_workload.cpp.o.d"
  "/root/repo/src/workload/replay.cpp" "src/workload/CMakeFiles/frap_workload.dir/replay.cpp.o" "gcc" "src/workload/CMakeFiles/frap_workload.dir/replay.cpp.o.d"
  "/root/repo/src/workload/tsce.cpp" "src/workload/CMakeFiles/frap_workload.dir/tsce.cpp.o" "gcc" "src/workload/CMakeFiles/frap_workload.dir/tsce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/frap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/frap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/frap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/frap_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
