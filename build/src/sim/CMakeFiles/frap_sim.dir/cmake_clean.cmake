file(REMOVE_RECURSE
  "CMakeFiles/frap_sim.dir/event_queue.cpp.o"
  "CMakeFiles/frap_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/frap_sim.dir/simulator.cpp.o"
  "CMakeFiles/frap_sim.dir/simulator.cpp.o.d"
  "libfrap_sim.a"
  "libfrap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
