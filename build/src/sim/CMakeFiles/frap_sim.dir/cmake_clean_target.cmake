file(REMOVE_RECURSE
  "libfrap_sim.a"
)
