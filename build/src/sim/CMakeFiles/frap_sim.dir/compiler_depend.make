# Empty compiler generated dependencies file for frap_sim.
# This may be replaced when dependencies are built.
