file(REMOVE_RECURSE
  "CMakeFiles/frap_metrics.dir/export.cpp.o"
  "CMakeFiles/frap_metrics.dir/export.cpp.o.d"
  "CMakeFiles/frap_metrics.dir/histogram.cpp.o"
  "CMakeFiles/frap_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/frap_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/frap_metrics.dir/timeseries.cpp.o.d"
  "CMakeFiles/frap_metrics.dir/utilization_meter.cpp.o"
  "CMakeFiles/frap_metrics.dir/utilization_meter.cpp.o.d"
  "libfrap_metrics.a"
  "libfrap_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frap_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
