
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/export.cpp" "src/metrics/CMakeFiles/frap_metrics.dir/export.cpp.o" "gcc" "src/metrics/CMakeFiles/frap_metrics.dir/export.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/metrics/CMakeFiles/frap_metrics.dir/histogram.cpp.o" "gcc" "src/metrics/CMakeFiles/frap_metrics.dir/histogram.cpp.o.d"
  "/root/repo/src/metrics/timeseries.cpp" "src/metrics/CMakeFiles/frap_metrics.dir/timeseries.cpp.o" "gcc" "src/metrics/CMakeFiles/frap_metrics.dir/timeseries.cpp.o.d"
  "/root/repo/src/metrics/utilization_meter.cpp" "src/metrics/CMakeFiles/frap_metrics.dir/utilization_meter.cpp.o" "gcc" "src/metrics/CMakeFiles/frap_metrics.dir/utilization_meter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/frap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/frap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
