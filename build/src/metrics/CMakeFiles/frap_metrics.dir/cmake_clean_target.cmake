file(REMOVE_RECURSE
  "libfrap_metrics.a"
)
