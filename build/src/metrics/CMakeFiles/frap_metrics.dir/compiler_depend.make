# Empty compiler generated dependencies file for frap_metrics.
# This may be replaced when dependencies are built.
